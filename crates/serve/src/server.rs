//! The std-only TCP front end: a nonblocking poll loop pumping protocol
//! lines through a [`ServeHandle`] while the fair scheduler keeps every
//! tenant's simulation moving between requests.
//!
//! One OS thread owns the whole service (sessions are not shared), so the
//! server needs no locks: the loop alternates between socket I/O and
//! [`Service::run_round`](crate::Service::run_round). Shutdown is
//! graceful by construction — on a `shutdown` request (the
//! SIGTERM-equivalent) or [`ServerHandle::shutdown`], the listener
//! closes, responses still buffered are flushed, in-flight steps finish
//! ([`Service::run_until_idle`](crate::Service::run_until_idle)) and every
//! journal is flushed before the thread exits.

use crate::proto::ServeHandle;
use crate::service::ServeConfig;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One connected client: the stream plus its line-reassembly buffers.
#[derive(Debug)]
struct Client {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    closed: bool,
}

/// A running server: the bound address, the shutdown flag and the serving
/// thread's handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The address the listener is bound to (resolve port 0 through
    /// this).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown and waits for the serving thread:
    /// listener closed, buffered responses flushed, in-flight steps
    /// finished, journals flushed.
    ///
    /// # Errors
    ///
    /// Propagates the serving thread's I/O error, if any.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("serve thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves on a background thread. Returns once the
/// listener is bound, so [`ServerHandle::addr`] is immediately
/// connectable.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve(cfg: ServeConfig, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("picos-serve".into())
        .spawn(move || serve_on(cfg, listener, &flag))?;
    Ok(ServerHandle {
        addr: local,
        stop,
        thread: Some(thread),
    })
}

/// Serves on an already-bound listener until a `shutdown` request arrives
/// or `stop` is raised, then shuts down gracefully. This is the CLI's
/// foreground entry point; [`serve`] wraps it in a thread.
///
/// # Errors
///
/// Propagates listener/socket configuration failures; per-client I/O
/// errors only drop that client.
pub fn serve_on(cfg: ServeConfig, listener: TcpListener, stop: &AtomicBool) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut handle =
        ServeHandle::new(cfg).map_err(|e| std::io::Error::other(format!("service init: {e}")))?;
    let mut clients: Vec<Client> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while !stop.load(Ordering::SeqCst) && !handle.shutdown_requested() {
        let mut busy = false;
        // Admit new connections.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    clients.push(Client {
                        stream,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        closed: false,
                    });
                    busy = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Pump every client: read available bytes, execute complete
        // lines, flush what the socket will take.
        for c in &mut clients {
            busy |= pump(c, &mut handle, &mut chunk);
        }
        clients.retain(|c| !c.closed);
        // Advance the tenants between I/O bursts.
        busy |= handle.service_mut().run_round() > 0;
        if !busy {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    // Graceful shutdown: stop accepting, flush buffered responses, finish
    // in-flight steps, flush every journal.
    drop(listener);
    for c in &mut clients {
        // Blocking flush: the shutdown acknowledgement must reach clients.
        let _ = c.stream.set_nonblocking(false);
        let _ = c.stream.write_all(&c.outbuf);
    }
    handle.service_mut().run_until_idle();
    handle
        .service_mut()
        .flush_journals()
        .map_err(|e| std::io::Error::other(format!("journal flush: {e}")))?;
    Ok(())
}

/// One I/O turn for one client; returns whether anything happened.
fn pump(c: &mut Client, handle: &mut ServeHandle, chunk: &mut [u8]) -> bool {
    let mut busy = false;
    loop {
        match c.stream.read(chunk) {
            Ok(0) => {
                c.closed = true;
                return true;
            }
            Ok(n) => {
                c.inbuf.extend_from_slice(&chunk[..n]);
                busy = true;
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.closed = true;
                return true;
            }
        }
    }
    // Execute every complete line in the input buffer.
    while let Some(nl) = c.inbuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = c.inbuf.drain(..=nl).collect();
        let line = String::from_utf8_lossy(&line[..nl]);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = handle.handle_line(trimmed);
        c.outbuf.extend_from_slice(response.as_bytes());
        c.outbuf.push(b'\n');
        busy = true;
    }
    // Flush as much of the output buffer as the socket takes.
    while !c.outbuf.is_empty() {
        match c.stream.write(&c.outbuf) {
            Ok(0) => {
                c.closed = true;
                return true;
            }
            Ok(n) => {
                c.outbuf.drain(..n);
                busy = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.closed = true;
                return true;
            }
        }
    }
    busy
}
