//! Cost model of the HIL platform around the Picos core.
//!
//! The paper's embedded system adds two cost layers on top of the raw
//! hardware (Section IV-B and Table IV):
//!
//! * **communication** — each message over the AXI Stream interface takes
//!   "around 200 to 300 cycles"; three messages cross per task (new task in,
//!   ready task out, finished task in), which is why the HW+comm throughput
//!   sits near 740 cycles/task;
//! * **ARM-side software** — in Full-system mode the ARM core creates each
//!   task, packs its dependences, retrieves ready tasks and forwards
//!   finishes, adding roughly 2000 serial cycles per task.

/// Delivery cost model of a serializing link: the AXI Stream bus of the
/// HIL platform and the inter-shard interconnect of the cluster model both
/// follow this discipline (one message at a time, per-flit occupancy, a
/// fixed delivery latency after the slot ends, a one-time setup cost).
///
/// A message of `w` payload words occupies the link for
/// `occupancy * ceil(w / width)` cycles, so `width` is the knob that trades
/// link wires for serialization: a wide link moves a long dependence list
/// in one flit, a narrow one streams it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Link occupancy per flit (serializes all traffic on the link).
    pub occupancy: u64,
    /// Additional delivery latency after a message's last flit.
    pub latency: u64,
    /// One-time setup before the first message can flow.
    pub setup: u64,
    /// Payload words per flit (`>= 1`).
    pub width: usize,
}

impl LinkModel {
    /// Number of flits a message of `words` payload words occupies.
    pub fn flits(&self, words: usize) -> u64 {
        words.max(1).div_ceil(self.width.max(1)) as u64
    }

    /// Default inter-shard interconnect of the cluster model: an on-board
    /// network an order of magnitude faster than the AXI Stream interface
    /// (which crosses into the processing system), two words per flit.
    pub fn interconnect() -> Self {
        LinkModel {
            occupancy: 8,
            latency: 32,
            setup: 0,
            width: 2,
        }
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::interconnect()
    }
}

/// Per-operation costs of the HIL platform, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HilCostModel {
    /// HW-only: TS output to worker start (workers live in the PL).
    pub dispatch: u64,
    /// Bus occupancy per AXI message (serializes all traffic).
    pub axi_occupancy: u64,
    /// Additional delivery latency per AXI message.
    pub axi_latency: u64,
    /// One-time interface setup before the first message can flow.
    pub axi_setup: u64,
    /// Depth of the new-task FIFO visible through status register SR0; the
    /// sender stops when this many submissions are in flight.
    pub sr_queue: usize,
    /// Full-system: one-time ARM-side setup before the first task.
    pub arm_startup: u64,
    /// Full-system: task creation on the ARM core.
    pub arm_create: u64,
    /// Full-system: fixed submission cost when a task has dependences.
    pub arm_submit_base: u64,
    /// Full-system: submission cost per dependence.
    pub arm_submit_per_dep: u64,
    /// Full-system: ready-task retrieval handling.
    pub arm_retrieve: u64,
    /// Full-system: handing a retrieved task to a worker thread.
    pub arm_dispatch: u64,
    /// Full-system: finished-task forwarding.
    pub arm_finish: u64,
}

impl Default for HilCostModel {
    fn default() -> Self {
        HilCostModel {
            dispatch: 3,
            axi_occupancy: 247,
            axi_latency: 30,
            axi_setup: 400,
            sr_queue: 1,
            arm_startup: 700,
            arm_create: 1_100,
            arm_submit_base: 380,
            arm_submit_per_dep: 20,
            arm_retrieve: 300,
            arm_dispatch: 250,
            arm_finish: 350,
        }
    }
}

impl HilCostModel {
    /// The AXI Stream interface as a [`LinkModel`]: single-word flits with
    /// the platform's occupancy/latency/setup costs. The HIL bus and any
    /// other consumer of the AXI discipline build their link from this.
    pub fn axi_link(&self) -> LinkModel {
        LinkModel {
            occupancy: self.axi_occupancy,
            latency: self.axi_latency,
            setup: self.axi_setup,
            width: 1,
        }
    }

    /// ARM-side submission cost for a task with `ndeps` dependences.
    pub fn arm_submit(&self, ndeps: usize) -> u64 {
        if ndeps == 0 {
            0
        } else {
            self.arm_submit_base + self.arm_submit_per_dep * ndeps as u64
        }
    }

    /// The steady-state ARM + bus cost per dependence-free task in
    /// Full-system mode (used by calibration tests).
    pub fn full_system_per_task(&self) -> u64 {
        self.arm_create
            + self.arm_retrieve
            + self.arm_dispatch
            + self.arm_finish
            + 3 * self.axi_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_zero_deps_is_free() {
        let m = HilCostModel::default();
        assert_eq!(m.arm_submit(0), 0);
        assert!(m.arm_submit(1) > 0);
        assert_eq!(
            m.arm_submit(15) - m.arm_submit(1),
            14 * m.arm_submit_per_dep
        );
    }

    #[test]
    fn full_system_magnitude_matches_paper() {
        // Paper Table IV: Full-system thrTask for Case1 is 2729 cycles.
        let m = HilCostModel::default();
        let t = m.full_system_per_task();
        assert!((2_400..3_100).contains(&t), "per-task {t}");
    }

    #[test]
    fn axi_link_mirrors_cost_model() {
        let m = HilCostModel::default();
        let l = m.axi_link();
        assert_eq!(l.occupancy, m.axi_occupancy);
        assert_eq!(l.latency, m.axi_latency);
        assert_eq!(l.setup, m.axi_setup);
        assert_eq!(l.width, 1);
    }

    #[test]
    fn flit_count_respects_width() {
        let l = LinkModel {
            occupancy: 10,
            latency: 0,
            setup: 0,
            width: 4,
        };
        assert_eq!(l.flits(0), 1, "empty payloads still need a header flit");
        assert_eq!(l.flits(1), 1);
        assert_eq!(l.flits(4), 1);
        assert_eq!(l.flits(5), 2);
        assert_eq!(l.flits(16), 4);
        let narrow = LinkModel { width: 0, ..l };
        assert_eq!(narrow.flits(3), 3, "zero width is clamped to one word");
    }

    #[test]
    fn comm_magnitude_matches_paper() {
        // Paper Table IV: HW+comm thrTask is ~740 = 3 AXI messages.
        let m = HilCostModel::default();
        let t = 3 * m.axi_occupancy;
        assert!((700..800).contains(&t), "per-task {t}");
    }
}
