//! Cost model of the HIL platform around the Picos core.
//!
//! The paper's embedded system adds two cost layers on top of the raw
//! hardware (Section IV-B and Table IV):
//!
//! * **communication** — each message over the AXI Stream interface takes
//!   "around 200 to 300 cycles"; three messages cross per task (new task in,
//!   ready task out, finished task in), which is why the HW+comm throughput
//!   sits near 740 cycles/task;
//! * **ARM-side software** — in Full-system mode the ARM core creates each
//!   task, packs its dependences, retrieves ready tasks and forwards
//!   finishes, adding roughly 2000 serial cycles per task.

/// Per-operation costs of the HIL platform, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HilCostModel {
    /// HW-only: TS output to worker start (workers live in the PL).
    pub dispatch: u64,
    /// Bus occupancy per AXI message (serializes all traffic).
    pub axi_occupancy: u64,
    /// Additional delivery latency per AXI message.
    pub axi_latency: u64,
    /// One-time interface setup before the first message can flow.
    pub axi_setup: u64,
    /// Depth of the new-task FIFO visible through status register SR0; the
    /// sender stops when this many submissions are in flight.
    pub sr_queue: usize,
    /// Full-system: one-time ARM-side setup before the first task.
    pub arm_startup: u64,
    /// Full-system: task creation on the ARM core.
    pub arm_create: u64,
    /// Full-system: fixed submission cost when a task has dependences.
    pub arm_submit_base: u64,
    /// Full-system: submission cost per dependence.
    pub arm_submit_per_dep: u64,
    /// Full-system: ready-task retrieval handling.
    pub arm_retrieve: u64,
    /// Full-system: handing a retrieved task to a worker thread.
    pub arm_dispatch: u64,
    /// Full-system: finished-task forwarding.
    pub arm_finish: u64,
}

impl Default for HilCostModel {
    fn default() -> Self {
        HilCostModel {
            dispatch: 3,
            axi_occupancy: 247,
            axi_latency: 30,
            axi_setup: 400,
            sr_queue: 1,
            arm_startup: 700,
            arm_create: 1_100,
            arm_submit_base: 380,
            arm_submit_per_dep: 20,
            arm_retrieve: 300,
            arm_dispatch: 250,
            arm_finish: 350,
        }
    }
}

impl HilCostModel {
    /// ARM-side submission cost for a task with `ndeps` dependences.
    pub fn arm_submit(&self, ndeps: usize) -> u64 {
        if ndeps == 0 {
            0
        } else {
            self.arm_submit_base + self.arm_submit_per_dep * ndeps as u64
        }
    }

    /// The steady-state ARM + bus cost per dependence-free task in
    /// Full-system mode (used by calibration tests).
    pub fn full_system_per_task(&self) -> u64 {
        self.arm_create
            + self.arm_retrieve
            + self.arm_dispatch
            + self.arm_finish
            + 3 * self.axi_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_zero_deps_is_free() {
        let m = HilCostModel::default();
        assert_eq!(m.arm_submit(0), 0);
        assert!(m.arm_submit(1) > 0);
        assert_eq!(
            m.arm_submit(15) - m.arm_submit(1),
            14 * m.arm_submit_per_dep
        );
    }

    #[test]
    fn full_system_magnitude_matches_paper() {
        // Paper Table IV: Full-system thrTask for Case1 is 2729 cycles.
        let m = HilCostModel::default();
        let t = m.full_system_per_task();
        assert!((2_400..3_100).contains(&t), "per-task {t}");
    }

    #[test]
    fn comm_magnitude_matches_paper() {
        // Paper Table IV: HW+comm thrTask is ~740 = 3 AXI messages.
        let m = HilCostModel::default();
        let t = 3 * m.axi_occupancy;
        assert!((700..800).contains(&t), "per-task {t}");
    }
}
