//! The three operational modes of the HIL platform (paper, Section IV-B).
//!
//! * [`HilMode::HwOnly`] — all tasks are pre-loaded into Picos and workers
//!   live in the programmable logic: measures the raw hardware.
//! * [`HilMode::HwComm`] — adds the AXI Stream bus: every new task, ready
//!   task and finish notification crosses the serializing bus.
//! * [`HilMode::FullSystem`] — the closed loop: the ARM core creates each
//!   task, submits it over the bus, retrieves ready tasks, dispatches them
//!   to workers and forwards finishes.
//!
//! All three modes are driven by one resumable stepper, [`HilSession`]:
//! tasks stream in through [`SessionCore::submit`] and the platform model
//! decides when they are created/submitted according to its own timing
//! (immediately for HW-only, behind the SR0 FIFO for HW+comm, behind the
//! serial ARM core for Full-system). [`run_hil`] is the batch driver over
//! a session.

use crate::cost::HilCostModel;
use crate::pool::{Bus, BusMsg, Workers};
use picos_core::{FinishedReq, PicosConfig, PicosSystem, SlotRef};
use picos_metrics::span::{SpanKind, SpanLog};
use picos_metrics::{SeriesSpec, Timeline, WindowSampler};
use picos_runtime::session::{
    feed_trace, Admission, EventLog, EventLoopCore, Ingest, ScheduleLog, SessionConfig,
    SessionCore, SimEvent,
};
use picos_runtime::ExecReport;
use picos_trace::snap::{Dec, Enc, SnapError};
use picos_trace::{Dependence, TaskDescriptor, TaskId, Trace, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Operational mode of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HilMode {
    /// Raw hardware: no communication or software costs.
    HwOnly,
    /// Hardware plus AXI communication.
    HwComm,
    /// Closed loop through the ARM core (communication + task creation).
    FullSystem,
}

impl HilMode {
    /// The three modes in paper order (Table IV's row groups).
    pub const ALL: [HilMode; 3] = [HilMode::HwOnly, HilMode::HwComm, HilMode::FullSystem];

    /// Paper-style label.
    pub fn name(self) -> &'static str {
        match self {
            HilMode::HwOnly => "HW-only",
            HilMode::HwComm => "HW+comm.",
            HilMode::FullSystem => "Full-system",
        }
    }

    /// Engine label of the reports this mode produces.
    pub fn engine_label(self) -> &'static str {
        match self {
            HilMode::HwOnly => "picos-hw-only",
            HilMode::HwComm => "picos-hw-comm",
            HilMode::FullSystem => "picos-full",
        }
    }
}

impl std::fmt::Display for HilMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a HIL run.
#[derive(Debug, Clone)]
pub struct HilConfig {
    /// The Picos core configuration.
    pub picos: PicosConfig,
    /// Number of workers executing tasks.
    pub workers: usize,
    /// Platform cost model.
    pub cost: HilCostModel,
    /// Deterministic fail-stop schedule: at each cycle in this list one
    /// worker fail-stops permanently ([`Workers::fail_one`]; the cluster
    /// backend's fault taxonomy extended to the single-Picos platform). A
    /// busy victim's in-flight task is re-executed on a surviving worker.
    /// Must leave at least one survivor.
    pub worker_faults: Vec<u64>,
}

impl HilConfig {
    /// The paper's balanced configuration with `workers` workers.
    pub fn balanced(workers: usize) -> Self {
        HilConfig {
            picos: PicosConfig::balanced(),
            workers,
            cost: HilCostModel::default(),
            worker_faults: Vec::new(),
        }
    }

    /// Adds a deterministic fail-stop worker-fault schedule (builder
    /// style). Times are absolute cycles; order does not matter.
    pub fn with_worker_faults(mut self, at: impl IntoIterator<Item = u64>) -> Self {
        self.worker_faults = at.into_iter().collect();
        self
    }
}

/// Mixes the platform-level configuration into a fingerprint so a snapshot
/// refuses to load into a differently-configured session (the Picos core's
/// own config is guarded inside [`PicosSystem::load_state`]).
fn hil_fingerprint(cfg: &HilConfig) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x100_0000_01b3)
    }
    let c = &cfg.cost;
    let mut h = [
        cfg.workers as u64,
        c.dispatch,
        c.axi_occupancy,
        c.axi_latency,
        c.axi_setup,
        c.sr_queue as u64,
        c.arm_startup,
        c.arm_create,
        c.arm_submit_base,
        c.arm_submit_per_dep,
        c.arm_retrieve,
        c.arm_dispatch,
        c.arm_finish,
    ]
    .into_iter()
    .fold(0xcbf2_9ce4_8422_2325, mix);
    h = mix(h, cfg.worker_faults.len() as u64);
    cfg.worker_faults.iter().fold(h, |h, &t| mix(h, t))
}

/// Errors from a HIL run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HilError {
    /// The platform stopped with unfinished work.
    Stalled {
        /// Tasks executed before the stall.
        executed: usize,
        /// Total tasks in the trace.
        total: usize,
        /// Time of the stall.
        at: u64,
    },
}

impl std::fmt::Display for HilError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HilError::Stalled {
                executed,
                total,
                at,
            } => {
                write!(
                    f,
                    "platform stalled at cycle {at} after {executed}/{total} tasks"
                )
            }
        }
    }
}

impl std::error::Error for HilError {}

fn min_next(cands: &[Option<u64>]) -> Option<u64> {
    cands.iter().flatten().copied().min()
}

/// What the platform needs to remember about an admitted task.
#[derive(Debug, Clone)]
struct TaskMeta {
    dur: u64,
    deps: Arc<[Dependence]>,
}

/// A resumable HIL platform stepper: the Picos core, the worker pool and —
/// depending on the [`HilMode`] — the AXI bus and the serial ARM core,
/// advanced on demand.
///
/// Submitted tasks enter the platform's ingest queue; the model itself
/// decides when each is created (the SR0 FIFO and the ARM core throttle
/// the two communication modes exactly as in the batch drivers), so a
/// session fed a whole trace and finished is cycle-identical to
/// [`run_hil`].
///
/// Cloning is a deep copy of the full dynamic state — the fork primitive
/// of the snapshot subsystem.
#[derive(Debug, Clone)]
pub struct HilSession {
    mode: HilMode,
    cfg: HilConfig,
    sys: PicosSystem,
    workers: Workers,
    /// The AXI bus (`HwComm` / `FullSystem` only).
    bus: Option<Bus>,
    tasks: Vec<TaskMeta>,
    /// Next admitted task the platform will create/submit.
    next_feed: usize,
    /// Completions awaiting ARM forwarding (`FullSystem` only).
    finish_q: VecDeque<(u32, SlotRef)>,
    newtasks_in_bus: usize,
    inflight_ready: usize,
    arm_free: u64,
    t: u64,
    /// Fail-stop schedule (sorted copy of the config's), with the cursor
    /// of the next pending fault.
    faults: Vec<u64>,
    fault_cursor: usize,
    /// Tasks waiting for a surviving worker after a fail-stop: killed
    /// in-flight tasks (`rerun == true`, re-executed with full duration,
    /// keeping their TM slot) and ready deliveries whose reserved worker
    /// died before they arrived (`rerun == false`).
    restart_q: VecDeque<(u32, SlotRef, bool)>,
    /// Deterministic task re-executions after fail-stop faults.
    recoveries: u64,
    ingest: Ingest,
    log: ScheduleLog,
    events: EventLog,
    /// Platform-level telemetry (worker occupancy, bus occupancy); the
    /// core's own sampler rides inside `sys`. `None` keeps every clock
    /// move sampling-free.
    sampler: Option<WindowSampler>,
    /// Driver-side lifecycle span recorder; the core's own span probe
    /// rides inside `sys` and is merged at finish. Observation-only.
    spans: Option<SpanLog>,
}

impl HilSession {
    /// Opens a session.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration has zero workers (the
    /// Picos core configuration itself is validated by
    /// [`PicosSystem::new`], which panics on invalid configs).
    pub fn new(mode: HilMode, cfg: HilConfig, session: SessionConfig) -> Result<Self, String> {
        if cfg.workers == 0 {
            return Err("picos platform needs at least one worker".into());
        }
        if cfg.worker_faults.len() >= cfg.workers {
            return Err(format!(
                "worker-fault schedule kills all {} workers; at least one must survive",
                cfg.workers
            ));
        }
        session.validate()?;
        let mut faults = cfg.worker_faults.clone();
        faults.sort_unstable();
        let mut sys = PicosSystem::new(cfg.picos.clone());
        let sampler = session.timeline_window.map(|w| {
            sys.attach_timeline(w);
            let mut series = vec![SeriesSpec::gauge("workers.busy")];
            if mode != HilMode::HwOnly {
                series.push(SeriesSpec::gauge("bus.inflight"));
            }
            WindowSampler::new(w, series)
        });
        let spans = session.trace_spans.then(|| {
            sys.attach_spans(0);
            SpanLog::new()
        });
        Ok(HilSession {
            sys,
            workers: Workers::new(cfg.workers),
            bus: match mode {
                HilMode::HwOnly => None,
                HilMode::HwComm | HilMode::FullSystem => Some(Bus::new(cfg.cost.axi_link())),
            },
            tasks: Vec::new(),
            next_feed: 0,
            finish_q: VecDeque::new(),
            newtasks_in_bus: 0,
            inflight_ready: 0,
            arm_free: cfg.cost.arm_startup,
            t: 0,
            faults,
            fault_cursor: 0,
            restart_q: VecDeque::new(),
            recoveries: 0,
            ingest: Ingest::new(session.window),
            log: ScheduleLog::default(),
            events: EventLog::new(session.collect_events),
            sampler,
            spans,
            mode,
            cfg,
        })
    }

    /// Reads the platform-level probe points (worker occupancy, bus
    /// occupancy) in the sampler's series order.
    fn probe_platform(&self, out: &mut [u64]) {
        out[0] = (self.cfg.workers - self.workers.idle()) as u64;
        if let Some(bus) = &self.bus {
            out[1] = bus.in_flight() as u64;
        }
    }

    /// Whether the platform could create admitted task `next_feed` once it
    /// has cycles for it.
    fn feed_ready(&self) -> bool {
        self.ingest.feedable(self.next_feed, self.ingest.finished)
    }

    /// Whether a communication mode may retrieve another ready task: one
    /// idle worker must stay reserved for every in-flight `Ready` delivery
    /// *and* every queued fault casualty, or a delivery could arrive with
    /// nobody to run it.
    fn can_retrieve(&self) -> bool {
        self.sys.ready_len() > 0 && self.workers.idle() > self.inflight_ready + self.restart_q.len()
    }

    /// Deterministic task re-executions after fail-stop worker faults.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Pops due fail-stop worker faults: the earliest-completing in-flight
    /// task is the deterministic victim and joins the restart queue; with
    /// nothing running an idle worker dies silently. Processed before
    /// completions at the same cycle, matching the cluster backend.
    fn pump_fault_kills(&mut self) {
        while self.fault_cursor < self.faults.len() && self.faults[self.fault_cursor] <= self.t {
            self.fault_cursor += 1;
            if let Some((task, slot)) = self.workers.fail_one() {
                self.restart_q.push_back((task, slot, true));
                if let Some(log) = &mut self.spans {
                    log.record(SpanKind::Fault, self.t, 0, task, 0);
                }
            }
        }
    }

    /// Dispatches queued fault casualties onto surviving workers, ahead of
    /// new ready tasks. A killed task keeps its TM slot — Picos never
    /// observed the failure — and its re-execution replaces the original
    /// schedule entry via [`ScheduleLog::rebegin`].
    fn dispatch_restarts(&mut self) {
        while self.workers.idle() > 0 {
            let Some((task, slot, rerun)) = self.restart_q.pop_front() else {
                break;
            };
            let st = self.t + self.cfg.cost.dispatch;
            let dur = self.tasks[task as usize].dur;
            let end = if rerun {
                self.recoveries += 1;
                self.log.rebegin(task, st, dur)
            } else {
                self.log.begin(task, st, dur)
            };
            self.events.push(SimEvent::TaskStarted { task, at: st });
            if let Some(log) = &mut self.spans {
                log.record(SpanKind::Started, st, 0, task, 0);
            }
            self.workers.start(end, task, slot);
        }
    }

    fn pump_hw_only(&mut self) {
        self.pump_fault_kills();
        let t = self.t;
        self.sys.advance_to(t);
        let mut touched = false;
        while let Some((task, slot)) = self.workers.pop_done_at(t) {
            self.sys.notify_finished(FinishedReq {
                task: TaskId::new(task),
                slot,
            });
            self.ingest.finished += 1;
            self.events.push(SimEvent::TaskFinished { task, at: t });
            if let Some(log) = &mut self.spans {
                log.record(SpanKind::Finished, t, 0, task, 0);
            }
            touched = true;
        }
        // Pre-load every task the taskwait structure allows.
        while self.feed_ready() {
            let meta = &self.tasks[self.next_feed];
            self.sys
                .submit(TaskId::new(self.next_feed as u32), meta.deps.clone());
            self.next_feed += 1;
            touched = true;
        }
        if touched {
            self.sys.advance_to(t);
        }
        self.dispatch_restarts();
        while self.workers.idle() > 0 {
            let Some(r) = self.sys.pop_ready() else { break };
            let st = t + self.cfg.cost.dispatch;
            let task = r.task.raw();
            let end = self.log.begin(task, st, self.tasks[r.task.index()].dur);
            self.events.push(SimEvent::TaskStarted { task, at: st });
            if let Some(log) = &mut self.spans {
                log.record(SpanKind::Dispatched, t, 0, task, 0);
                log.record(SpanKind::Started, st, 0, task, 0);
            }
            self.workers.start(end, task, r.slot);
        }
    }

    fn pump_hw_comm(&mut self) {
        self.pump_fault_kills();
        let t = self.t;
        let bus = self.bus.as_mut().expect("HwComm has a bus");
        self.sys.advance_to(t);
        let mut touched = false;
        while let Some((task, slot)) = self.workers.pop_done_at(t) {
            bus.send(t, BusMsg::Finish(task, slot));
            self.ingest.finished += 1;
            self.events.push(SimEvent::TaskFinished { task, at: t });
            if let Some(log) = &mut self.spans {
                log.record(SpanKind::Finished, t, 0, task, 0);
            }
            touched = true;
        }
        while let Some(msg) = bus.pop_delivery_at(t) {
            touched = true;
            match msg {
                BusMsg::NewTask(i) => {
                    self.sys
                        .submit(TaskId::new(i), self.tasks[i as usize].deps.clone());
                    self.newtasks_in_bus -= 1;
                }
                BusMsg::Ready(task, slot) => {
                    self.inflight_ready -= 1;
                    if self.workers.idle() == 0 {
                        // The worker reserved for this delivery fail-stopped
                        // while the message was in flight; queue behind the
                        // other casualties.
                        self.restart_q.push_back((task, slot, false));
                        continue;
                    }
                    let end = self.log.begin(task, t, self.tasks[task as usize].dur);
                    self.events.push(SimEvent::TaskStarted { task, at: t });
                    if let Some(log) = &mut self.spans {
                        log.record(SpanKind::Started, t, 0, task, 0);
                    }
                    self.workers.start(end, task, slot);
                }
                BusMsg::Finish(task, slot) => {
                    self.sys.notify_finished(FinishedReq {
                        task: TaskId::new(task),
                        slot,
                    });
                }
            }
        }
        if touched {
            self.sys.advance_to(t);
        }
        self.dispatch_restarts();
        // Feed new tasks while the SR0 FIFO has room and the taskwait
        // structure allows.
        while self.ingest.feedable(self.next_feed, self.ingest.finished)
            && self.newtasks_in_bus + self.sys.pending_new() < self.cfg.cost.sr_queue
        {
            let bus = self.bus.as_mut().expect("HwComm has a bus");
            bus.send(t, BusMsg::NewTask(self.next_feed as u32));
            self.newtasks_in_bus += 1;
            self.next_feed += 1;
        }
        // Retrieve ready tasks for free workers.
        while self.can_retrieve() {
            let r = self.sys.pop_ready().expect("ready_len checked");
            let bus = self.bus.as_mut().expect("HwComm has a bus");
            bus.send(t, BusMsg::Ready(r.task.raw(), r.slot));
            if let Some(log) = &mut self.spans {
                log.record(SpanKind::Dispatched, t, 0, r.task.raw(), 0);
            }
            self.inflight_ready += 1;
        }
    }

    fn pump_full_system(&mut self) {
        self.pump_fault_kills();
        let t = self.t;
        let bus = self.bus.as_mut().expect("FullSystem has a bus");
        self.sys.advance_to(t);
        let mut touched = false;
        while let Some((task, slot)) = self.workers.pop_done_at(t) {
            self.finish_q.push_back((task, slot));
            self.ingest.finished += 1;
            self.events.push(SimEvent::TaskFinished { task, at: t });
            if let Some(log) = &mut self.spans {
                log.record(SpanKind::Finished, t, 0, task, 0);
            }
            touched = true;
        }
        while let Some(msg) = bus.pop_delivery_at(t) {
            touched = true;
            match msg {
                BusMsg::NewTask(i) => {
                    self.sys
                        .submit(TaskId::new(i), self.tasks[i as usize].deps.clone());
                    self.newtasks_in_bus -= 1;
                }
                BusMsg::Ready(task, slot) => {
                    self.inflight_ready -= 1;
                    if self.workers.idle() == 0 {
                        // The worker reserved for this delivery fail-stopped
                        // while the message was in flight; queue behind the
                        // other casualties.
                        self.restart_q.push_back((task, slot, false));
                        continue;
                    }
                    let end = self.log.begin(task, t, self.tasks[task as usize].dur);
                    self.events.push(SimEvent::TaskStarted { task, at: t });
                    if let Some(log) = &mut self.spans {
                        log.record(SpanKind::Started, t, 0, task, 0);
                    }
                    self.workers.start(end, task, slot);
                }
                BusMsg::Finish(task, slot) => {
                    self.sys.notify_finished(FinishedReq {
                        task: TaskId::new(task),
                        slot,
                    });
                }
            }
        }
        if touched {
            self.sys.advance_to(t);
        }
        self.dispatch_restarts();
        let bus = self.bus.as_mut().expect("FullSystem has a bus");
        // The ARM core is a serial resource; one action per free slot, with
        // finish forwarding first (it releases downstream resources), then
        // ready retrieval, then creation of the next task.
        while self.arm_free <= t {
            if let Some((task, slot)) = self.finish_q.pop_front() {
                let done = t + self.cfg.cost.arm_finish;
                self.arm_free = bus.send(done, BusMsg::Finish(task, slot));
            } else if self.sys.ready_len() > 0
                && self.workers.idle() > self.inflight_ready + self.restart_q.len()
            {
                let r = self.sys.pop_ready().expect("ready_len checked");
                let done = t + self.cfg.cost.arm_retrieve;
                let slot_end = bus.send(done, BusMsg::Ready(r.task.raw(), r.slot));
                if let Some(log) = &mut self.spans {
                    log.record(SpanKind::Dispatched, done, 0, r.task.raw(), 0);
                }
                self.arm_free = slot_end + self.cfg.cost.arm_dispatch;
                self.inflight_ready += 1;
            } else if self.ingest.feedable(self.next_feed, self.ingest.finished)
                && self.newtasks_in_bus + self.sys.pending_new() < self.cfg.cost.sr_queue
            {
                let ndeps = self.tasks[self.next_feed].deps.len();
                let done = t + self.cfg.cost.arm_create + self.cfg.cost.arm_submit(ndeps);
                self.arm_free = bus.send(done, BusMsg::NewTask(self.next_feed as u32));
                self.newtasks_in_bus += 1;
                self.next_feed += 1;
            } else {
                break;
            }
        }
    }

    /// Runs the session to quiescence and returns the schedule report plus
    /// the core's hardware counters.
    ///
    /// # Errors
    ///
    /// Returns [`HilError::Stalled`] if work remains that no event will
    /// release (an engine bug).
    pub fn into_report(self) -> Result<(ExecReport, picos_core::Stats), HilError> {
        self.into_report_full().map(|(r, s, _)| (r, s))
    }

    /// Like [`HilSession::into_report`], and also returns the run's
    /// [`Timeline`] when the session was opened with a telemetry window:
    /// the platform series (`workers.busy`, `bus.inflight`) stitched with
    /// the core's probe series under the `core.` scope.
    ///
    /// # Errors
    ///
    /// See [`HilSession::into_report`].
    pub fn into_report_full(
        self,
    ) -> Result<(ExecReport, picos_core::Stats, Option<Timeline>), HilError> {
        self.into_output().map(|(r, s, t, _)| (r, s, t))
    }

    /// Like [`HilSession::into_report_full`], and also returns the run's
    /// lifecycle [`SpanLog`] when the session was opened with span
    /// tracing: driver events (submit, dispatch, start, finish) merged
    /// with the core's probe events, in recording order — consumers that
    /// need the deterministic order call [`SpanLog::canonical_sort`]
    /// (analysis entry points like the critical-path walker are
    /// order-insensitive, so the hot finish path skips the sort).
    ///
    /// # Errors
    ///
    /// See [`HilSession::into_report`].
    #[allow(clippy::type_complexity)]
    pub fn into_output(
        mut self,
    ) -> Result<
        (
            ExecReport,
            picos_core::Stats,
            Option<Timeline>,
            Option<SpanLog>,
        ),
        HilError,
    > {
        self.drive_finish();
        let n = self.ingest.admitted;
        let clean = self.log.order.len() == n
            && self.sys.in_flight() == 0
            && self.bus.as_ref().is_none_or(|b| b.in_flight() == 0)
            && self.finish_q.is_empty()
            && self.restart_q.is_empty()
            && !self.workers.busy()
            && self.next_feed == n;
        if !clean {
            return Err(HilError::Stalled {
                executed: self.log.order.len(),
                total: n,
                at: self.t,
            });
        }
        let stats = self.sys.stats();
        let timeline = match self.sampler.take() {
            Some(sampler) => {
                let end = self.t;
                let platform = sampler.finish(end, |out| self.probe_platform(out));
                let core = self
                    .sys
                    .take_timeline()
                    .expect("core sampler attached alongside the platform sampler");
                Some(Timeline::stitch(&[("", &platform), ("core.", &core)]))
            }
            None => None,
        };
        let mut spans = self.spans.take();
        if let Some(log) = spans.as_mut() {
            if let Some(core) = self.sys.take_spans() {
                log.extend_from(&core);
            }
        }
        Ok((
            self.log
                .into_report(self.mode.engine_label(), self.cfg.workers),
            stats,
            timeline,
            spans,
        ))
    }

    /// Serializes the full dynamic platform state.
    /// [`HilSession::load_state`] overwrites an identically configured
    /// session with it; [`Clone`] is the in-memory fork.
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.u64(mode_code(self.mode))
            .u64(hil_fingerprint(&self.cfg))
            .bool(self.sampler.is_some())
            .bool(self.spans.is_some())
            .val(self.sys.save_state())
            .val(self.workers.save_state())
            .val(match &self.bus {
                Some(bus) => bus.save_state_with(enc_bus_msg),
                None => Value::Null,
            })
            .seq(self.tasks.iter(), |e, m| {
                e.u64(m.dur).seq(m.deps.iter(), |e, d| {
                    e.u64(d.addr).u64(picos_runtime::snap::dir_code(d.dir));
                });
            })
            .usize(self.next_feed)
            .seq(self.finish_q.iter(), |e, &(task, slot)| {
                e.u32(task).u64(slot_pack(slot));
            })
            .usize(self.newtasks_in_bus)
            .usize(self.inflight_ready)
            .u64(self.arm_free)
            .u64(self.t)
            .usize(self.fault_cursor)
            .seq(self.restart_q.iter(), |e, &(task, slot, rerun)| {
                e.u32(task).u64(slot_pack(slot)).bool(rerun);
            })
            .u64(self.recoveries)
            .val(self.ingest.save_state())
            .val(self.log.save_state())
            .val(self.events.save_state())
            .val(match &self.sampler {
                Some(s) => s.save_state(),
                None => Value::Null,
            })
            .val(match &self.spans {
                Some(s) => s.save_state(),
                None => Value::Null,
            });
        e.done()
    }

    /// Overwrites this session's dynamic state with the state recorded by
    /// [`HilSession::save_state`]. Continuing the restored session is
    /// bit-exact with the session the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or when the snapshot
    /// was taken under a different mode, platform configuration or
    /// observation setup.
    pub fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        use picos_trace::snap::guard;
        let mut d = Dec::new(v, "hil session")?;
        guard("hil mode", d.u64()?, mode_code(self.mode))?;
        guard("hil config", d.u64()?, hil_fingerprint(&self.cfg))?;
        guard(
            "hil sampler attached",
            d.bool()? as u64,
            self.sampler.is_some() as u64,
        )?;
        guard(
            "hil spans attached",
            d.bool()? as u64,
            self.spans.is_some() as u64,
        )?;
        let sys = d.val()?;
        let workers = d.val()?;
        let bus = d.val()?;
        let tasks = d.seq(|d| {
            let dur = d.u64()?;
            let deps: Vec<Dependence> = d.seq(|d| {
                Ok(Dependence::new(
                    d.u64()?,
                    picos_runtime::snap::dir_from(d.u64()?)?,
                ))
            })?;
            Ok(TaskMeta {
                dur,
                deps: deps.into(),
            })
        })?;
        let next_feed = d.usize()?;
        let finish_q: Vec<(u32, SlotRef)> = d.seq(|d| Ok((d.u32()?, slot_unpack(d.u64()?))))?;
        let newtasks_in_bus = d.usize()?;
        let inflight_ready = d.usize()?;
        let arm_free = d.u64()?;
        let t = d.u64()?;
        let fault_cursor = d.usize()?;
        let restart_q: Vec<(u32, SlotRef, bool)> =
            d.seq(|d| Ok((d.u32()?, slot_unpack(d.u64()?), d.bool()?)))?;
        if fault_cursor > self.faults.len() {
            return Err(SnapError::new("hil session: fault cursor out of range"));
        }
        let recoveries = d.u64()?;
        self.sys.load_state(sys)?;
        self.workers.load_state(workers)?;
        match (&mut self.bus, bus) {
            (None, Value::Null) => {}
            (Some(link), v) => link.load_state_with(v, dec_bus_msg)?,
            (None, _) => return Err(SnapError::new("hil session: unexpected bus state")),
        }
        self.ingest.load_state(d.val()?)?;
        self.log.load_state(d.val()?)?;
        self.events.load_state(d.val()?)?;
        self.sampler = match d.val()? {
            Value::Null => None,
            v => Some(WindowSampler::load_state(v)?),
        };
        self.spans = match d.val()? {
            Value::Null => None,
            v => Some(SpanLog::load_state(v)?),
        };
        self.tasks = tasks;
        self.next_feed = next_feed;
        self.finish_q = finish_q.into();
        self.newtasks_in_bus = newtasks_in_bus;
        self.inflight_ready = inflight_ready;
        self.arm_free = arm_free;
        self.t = t;
        self.fault_cursor = fault_cursor;
        self.restart_q = restart_q.into();
        self.recoveries = recoveries;
        Ok(())
    }
}

/// Stable wire code of a [`HilMode`].
fn mode_code(m: HilMode) -> u64 {
    match m {
        HilMode::HwOnly => 0,
        HilMode::HwComm => 1,
        HilMode::FullSystem => 2,
    }
}

/// Packs a TM slot reference into one integer (`trs << 16 | entry`).
fn slot_pack(s: SlotRef) -> u64 {
    (s.trs as u64) << 16 | s.entry as u64
}

fn slot_unpack(v: u64) -> SlotRef {
    SlotRef::new((v >> 16) as u8, (v & 0xFFFF) as u16)
}

/// Encodes one bus message (variant code first).
fn enc_bus_msg(e: &mut Enc, m: &BusMsg) {
    match *m {
        BusMsg::NewTask(i) => {
            e.u64(0).u32(i);
        }
        BusMsg::Ready(task, slot) => {
            e.u64(1).u32(task).u64(slot_pack(slot));
        }
        BusMsg::Finish(task, slot) => {
            e.u64(2).u32(task).u64(slot_pack(slot));
        }
    }
}

/// Decodes one bus message written by [`enc_bus_msg`].
fn dec_bus_msg(d: &mut Dec) -> Result<BusMsg, SnapError> {
    match d.u64()? {
        0 => Ok(BusMsg::NewTask(d.u32()?)),
        1 => Ok(BusMsg::Ready(d.u32()?, slot_unpack(d.u64()?))),
        2 => Ok(BusMsg::Finish(d.u32()?, slot_unpack(d.u64()?))),
        other => Err(SnapError::new(format!("unknown bus message code {other}"))),
    }
}

impl EventLoopCore for HilSession {
    /// Runs the loop body of the batch driver at the current time:
    /// completions, bus deliveries, task feeding and ready dispatch.
    /// Idempotent at a fixed time, so clients may interleave submissions
    /// with settling freely.
    fn pump(&mut self) {
        match self.mode {
            HilMode::HwOnly => self.pump_hw_only(),
            HilMode::HwComm => self.pump_hw_comm(),
            HilMode::FullSystem => self.pump_full_system(),
        }
    }

    /// Time of the next internal event: core, workers, bus, the next
    /// scheduled worker fault and — in Full-system mode — the pending ARM
    /// action.
    fn next_time(&self) -> Option<u64> {
        let bus_next = self.bus.as_ref().and_then(Bus::next_delivery);
        let arm_cand = if self.mode == HilMode::FullSystem {
            let arm_pending = !self.finish_q.is_empty()
                || self.can_retrieve()
                || (self.feed_ready()
                    && self.newtasks_in_bus + self.sys.pending_new() < self.cfg.cost.sr_queue);
            (arm_pending && self.arm_free > self.t).then_some(self.arm_free)
        } else {
            None
        };
        let fault_cand = self
            .faults
            .get(self.fault_cursor)
            .copied()
            .filter(|&ft| ft > self.t);
        min_next(&[
            self.sys.next_event_time(),
            self.workers.next_done(),
            bus_next,
            arm_cand,
            fault_cand,
        ])
    }

    fn clock(&self) -> u64 {
        self.t
    }

    fn set_clock(&mut self, t: u64) {
        // Telemetry boundary crossing: platform state is constant between
        // pumps, so sampling before the clock moves observes the state
        // each crossed boundary lived under.
        if self.sampler.as_ref().is_some_and(|s| s.due(t)) {
            let mut sampler = self.sampler.take().expect("checked above");
            sampler.advance(t, |out| self.probe_platform(out));
            self.sampler = Some(sampler);
        }
        self.t = t;
    }

    fn on_clock_jump(&mut self) {
        self.sys.advance_to(self.t);
    }

    /// Whether the next submission cannot be ingested right now.
    fn ingest_blocked(&self) -> bool {
        self.ingest.saturated() || (self.next_feed < self.ingest.admitted && !self.feed_ready())
    }
}

impl SessionCore for HilSession {
    fn submit(&mut self, task: &TaskDescriptor) -> Admission {
        if self.ingest.saturated() {
            return Admission::Backpressured;
        }
        self.ingest.admit();
        self.log.admit(task.duration);
        if let Some(log) = &mut self.spans {
            log.record(SpanKind::Submitted, self.t, 0, self.tasks.len() as u32, 0);
        }
        self.tasks.push(TaskMeta {
            dur: task.duration,
            deps: task.deps.clone(),
        });
        Admission::Accepted
    }

    fn barrier(&mut self) {
        self.ingest.barrier();
    }

    fn advance_to(&mut self, cycle: u64) {
        self.drive_to(cycle);
    }

    fn step(&mut self) -> bool {
        self.drive_step()
    }

    fn now(&self) -> u64 {
        self.t
    }

    fn in_flight(&self) -> usize {
        self.ingest.in_flight()
    }

    fn drain_events(&mut self, out: &mut Vec<SimEvent>) {
        self.events.drain_into(out);
    }

    fn reserve(&mut self, additional: usize) {
        self.ingest.reserve(additional);
        self.log.reserve(additional);
        self.tasks.reserve(additional);
        self.sys.reserve_new(additional);
    }
}

/// Runs a trace through the platform in the given mode; returns the
/// schedule and, in the report's `engine` field, a label like
/// `"picos-hw-only"`. Opens a [`HilSession`], feeds the whole trace and
/// finishes it.
///
/// # Errors
///
/// Returns [`HilError::Stalled`] if the run cannot complete (this would
/// indicate an engine bug; the configuration itself is validated by
/// [`PicosSystem::new`]).
///
/// # Panics
///
/// Panics on a zero worker count.
pub fn run_hil(trace: &Trace, mode: HilMode, cfg: &HilConfig) -> Result<ExecReport, HilError> {
    run_hil_with_stats(trace, mode, cfg).map(|(r, _)| r)
}

/// Collects the per-run Picos statistics alongside the report.
///
/// Same as [`run_hil`] but also returns the core's counters (DM conflicts
/// for Table II, stalls, peaks).
///
/// # Errors
///
/// See [`run_hil`].
///
/// # Panics
///
/// Panics on a zero worker count.
pub fn run_hil_with_stats(
    trace: &Trace,
    mode: HilMode,
    cfg: &HilConfig,
) -> Result<(ExecReport, picos_core::Stats), HilError> {
    let mut s = HilSession::new(mode, cfg.clone(), SessionConfig::batch())
        .expect("need at least one worker");
    feed_trace(&mut s, trace).expect("unbounded window cannot stall");
    s.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_core::{DmDesign, TsPolicy};
    use picos_trace::gen;

    #[test]
    fn all_modes_complete_and_validate_on_synthetics() {
        for case in gen::Case::ALL {
            let tr = gen::synthetic(case);
            for mode in HilMode::ALL {
                let cfg = HilConfig::balanced(12);
                let r = run_hil(&tr, mode, &cfg).unwrap_or_else(|e| panic!("{case:?} {mode}: {e}"));
                r.validate(&tr)
                    .unwrap_or_else(|e| panic!("{case:?} {mode}: {e}"));
            }
        }
    }

    #[test]
    fn mode_overheads_are_ordered() {
        // HW-only < HW+comm < Full-system makespan on the same trace.
        let tr = gen::synthetic(gen::Case::Case2);
        let cfg = HilConfig::balanced(12);
        let hw = run_hil(&tr, HilMode::HwOnly, &cfg).unwrap().makespan;
        let comm = run_hil(&tr, HilMode::HwComm, &cfg).unwrap().makespan;
        let full = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap().makespan;
        assert!(hw < comm, "{hw} !< {comm}");
        assert!(comm < full, "{comm} !< {full}");
    }

    #[test]
    fn real_app_completes_in_full_system() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(256));
        let cfg = HilConfig::balanced(8);
        let r = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap();
        r.validate(&tr).unwrap();
        assert!(r.speedup() > 1.0, "speedup {}", r.speedup());
    }

    #[test]
    fn speedup_grows_with_workers_on_parallel_app() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(128));
        let s2 = run_hil(&tr, HilMode::FullSystem, &HilConfig::balanced(2))
            .unwrap()
            .speedup();
        let s8 = run_hil(&tr, HilMode::FullSystem, &HilConfig::balanced(8))
            .unwrap()
            .speedup();
        assert!(s8 > s2 * 1.5, "s2={s2} s8={s8}");
    }

    #[test]
    fn dm_designs_rank_on_clustered_heat() {
        // Heat's contiguous blocks: Pearson must beat the direct designs
        // (paper, Figure 8 first row).
        let tr = gen::heat(gen::HeatConfig::paper(64));
        let mut speeds = std::collections::HashMap::new();
        for dm in DmDesign::ALL {
            let cfg = HilConfig {
                picos: PicosConfig::baseline(dm),
                ..HilConfig::balanced(12)
            };
            let (r, stats) = run_hil_with_stats(&tr, HilMode::HwOnly, &cfg).unwrap();
            r.validate(&tr).unwrap();
            speeds.insert(dm, (r.speedup(), stats.dm_conflicts));
        }
        let (sp, cp) = speeds[&DmDesign::PearsonEightWay];
        let (s8, c8) = speeds[&DmDesign::EightWay];
        assert!(cp < c8, "pearson conflicts {cp} !< 8way {c8}");
        assert!(sp >= s8 * 0.95, "pearson {sp} worse than 8way {s8}");
    }

    #[test]
    fn lifo_policy_runs_and_validates() {
        let tr = gen::lu(gen::LuConfig::paper(128));
        let cfg = HilConfig {
            picos: PicosConfig::balanced().with_ts_policy(TsPolicy::Lifo),
            ..HilConfig::balanced(8)
        };
        let r = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap();
        r.validate(&tr).unwrap();
    }

    #[test]
    fn deterministic_runs() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let cfg = HilConfig::balanced(16);
        let a = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap();
        let b = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mode_names() {
        assert_eq!(HilMode::HwOnly.to_string(), "HW-only");
        assert_eq!(HilMode::FullSystem.name(), "Full-system");
        assert_eq!(HilMode::HwComm.engine_label(), "picos-hw-comm");
    }

    #[test]
    fn session_open_stream_holds_the_clock() {
        // While the platform can ingest, step() must not advance time —
        // the property that makes any submit/step interleaving bit-exact.
        let tr = gen::synthetic(gen::Case::Case1);
        for mode in HilMode::ALL {
            let mut s =
                HilSession::new(mode, HilConfig::balanced(4), SessionConfig::batch()).unwrap();
            assert_eq!(s.submit(&tr.tasks()[0]), Admission::Accepted);
            assert!(!s.step(), "{mode}: open unblocked session must hold");
            assert_eq!(s.now(), 0, "{mode}");
        }
    }

    #[test]
    fn session_matches_batch_per_mode() {
        let tr = gen::synthetic(gen::Case::Case5);
        for mode in HilMode::ALL {
            let cfg = HilConfig::balanced(6);
            let batch = run_hil_with_stats(&tr, mode, &cfg).unwrap();
            let mut s = HilSession::new(mode, cfg.clone(), SessionConfig::batch()).unwrap();
            feed_trace(&mut s, &tr).unwrap();
            let streamed = s.into_report().unwrap();
            assert_eq!(batch, streamed, "{mode}");
        }
    }

    #[test]
    fn windowed_session_backpressures_and_completes() {
        let tr = gen::synthetic(gen::Case::Case2);
        let mut s = HilSession::new(
            HilMode::HwOnly,
            HilConfig::balanced(2),
            SessionConfig::windowed(4),
        )
        .unwrap();
        let mut retries = 0u64;
        for task in tr.iter() {
            loop {
                match s.submit(task) {
                    Admission::Accepted => break,
                    Admission::Backpressured => {
                        retries += 1;
                        assert!(s.step(), "blocked session must drain");
                    }
                }
            }
            assert!(s.in_flight() <= 4);
        }
        assert!(retries > 0, "a 4-task window must backpressure");
        let (r, stats) = s.into_report().unwrap();
        r.validate(&tr).unwrap();
        assert_eq!(stats.tasks_completed as usize, tr.len());
    }

    #[test]
    fn zero_workers_is_a_session_error() {
        assert!(HilSession::new(
            HilMode::HwOnly,
            HilConfig::balanced(0),
            SessionConfig::batch()
        )
        .is_err());
    }

    #[test]
    fn fault_schedule_killing_every_worker_is_rejected() {
        let cfg = HilConfig::balanced(2).with_worker_faults([10, 20]);
        let err = HilSession::new(HilMode::HwOnly, cfg, SessionConfig::batch()).unwrap_err();
        assert!(err.contains("at least one must survive"), "{err}");
    }

    #[test]
    fn worker_faults_complete_with_recoveries_in_every_mode() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        for mode in HilMode::ALL {
            let base = HilConfig::balanced(6);
            let healthy = run_hil(&tr, mode, &base).unwrap();
            let cfg = base.clone().with_worker_faults([500, 2_000, 9_000]);
            let mut s = HilSession::new(mode, cfg, SessionConfig::batch()).unwrap();
            feed_trace(&mut s, &tr).unwrap();
            let recoveries = s.recoveries();
            let faulty = {
                s.drive_finish();
                let recov = s.recoveries();
                assert!(recov >= recoveries);
                let (r, _) = s.into_report().unwrap();
                assert!(recov > 0, "{mode}: a busy victim must re-execute");
                r
            };
            faulty
                .validate(&tr)
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert!(
                faulty.makespan >= healthy.makespan,
                "{mode}: losing workers cannot speed the run up \
                 ({} < {})",
                faulty.makespan,
                healthy.makespan
            );
        }
    }

    #[test]
    fn worker_faults_are_deterministic() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(128));
        let cfg = HilConfig::balanced(8).with_worker_faults([100, 3_000, 3_000, 12_000]);
        for mode in HilMode::ALL {
            let a = run_hil(&tr, mode, &cfg).unwrap();
            let b = run_hil(&tr, mode, &cfg).unwrap();
            assert_eq!(a, b, "{mode}");
        }
    }

    fn feed_range(s: &mut HilSession, tr: &Trace, range: std::ops::Range<usize>) {
        for i in range {
            if tr.barriers().contains(&(i as u32)) {
                s.barrier();
            }
            while s.submit(&tr.tasks()[i]) == Admission::Backpressured {
                assert!(s.step(), "backpressured session must progress");
            }
        }
    }

    #[test]
    fn snapshot_restore_equals_continuous() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let scfg = SessionConfig::windowed(16).with_timeline(64).with_spans();
        for mode in HilMode::ALL {
            let cfg = HilConfig::balanced(4).with_worker_faults([700]);
            for pause in [0, 9, tr.len() / 2] {
                let mut cont = HilSession::new(mode, cfg.clone(), scfg).unwrap();
                let mut live = HilSession::new(mode, cfg.clone(), scfg).unwrap();
                feed_range(&mut cont, &tr, 0..pause);
                feed_range(&mut live, &tr, 0..pause);

                // Snapshot through the JSON text codec, restore into a
                // fresh identically-configured session.
                let text = picos_trace::snap::value_to_json(&live.save_state());
                let snap = picos_trace::snap::value_from_json(&text).unwrap();
                let mut restored = HilSession::new(mode, cfg.clone(), scfg).unwrap();
                restored.load_state(&snap).unwrap();

                feed_range(&mut cont, &tr, pause..tr.len());
                feed_range(&mut restored, &tr, pause..tr.len());
                let a = cont.into_output().unwrap();
                let b = restored.into_output().unwrap();
                assert_eq!(a, b, "{mode} pause {pause}");
            }
        }
    }

    #[test]
    fn fork_is_an_independent_replica() {
        let tr = gen::synthetic(gen::Case::Case5);
        let cfg = HilConfig::balanced(4);
        let mut orig =
            HilSession::new(HilMode::FullSystem, cfg.clone(), SessionConfig::batch()).unwrap();
        feed_range(&mut orig, &tr, 0..24);
        let baseline = orig.save_state();

        let mut fork = orig.clone();
        feed_range(&mut fork, &tr, 24..tr.len());
        let forked = fork.into_report().unwrap();

        // Driving the fork to completion left the original untouched.
        assert_eq!(
            picos_trace::snap::value_to_json(&orig.save_state()),
            picos_trace::snap::value_to_json(&baseline)
        );
        feed_range(&mut orig, &tr, 24..tr.len());
        assert_eq!(orig.into_report().unwrap(), forked);
    }

    #[test]
    fn snapshot_rejects_config_mismatch() {
        let tr = gen::synthetic(gen::Case::Case1);
        let mut a = HilSession::new(
            HilMode::HwComm,
            HilConfig::balanced(4),
            SessionConfig::batch(),
        )
        .unwrap();
        feed_range(&mut a, &tr, 0..tr.len().min(8));
        let snap = a.save_state();

        let mut wrong_mode = HilSession::new(
            HilMode::HwOnly,
            HilConfig::balanced(4),
            SessionConfig::batch(),
        )
        .unwrap();
        let err = wrong_mode.load_state(&snap).unwrap_err();
        assert!(err.to_string().contains("hil mode"), "{err}");

        let mut wrong_cfg = HilSession::new(
            HilMode::HwComm,
            HilConfig::balanced(2),
            SessionConfig::batch(),
        )
        .unwrap();
        let err = wrong_cfg.load_state(&snap).unwrap_err();
        assert!(err.to_string().contains("hil config"), "{err}");
    }
}
