//! The three operational modes of the HIL platform (paper, Section IV-B).
//!
//! * [`HilMode::HwOnly`] — all tasks are pre-loaded into Picos and workers
//!   live in the programmable logic: measures the raw hardware.
//! * [`HilMode::HwComm`] — adds the AXI Stream bus: every new task, ready
//!   task and finish notification crosses the serializing bus.
//! * [`HilMode::FullSystem`] — the closed loop: the ARM core creates each
//!   task, submits it over the bus, retrieves ready tasks, dispatches them
//!   to workers and forwards finishes.

use crate::cost::HilCostModel;
use crate::pool::{Bus, BusMsg, Workers};
use picos_core::{FinishedReq, PicosConfig, PicosSystem, SlotRef};
use picos_runtime::ExecReport;
use picos_trace::{TaskId, Trace};
use std::collections::VecDeque;

/// Operational mode of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HilMode {
    /// Raw hardware: no communication or software costs.
    HwOnly,
    /// Hardware plus AXI communication.
    HwComm,
    /// Closed loop through the ARM core (communication + task creation).
    FullSystem,
}

impl HilMode {
    /// The three modes in paper order (Table IV's row groups).
    pub const ALL: [HilMode; 3] = [HilMode::HwOnly, HilMode::HwComm, HilMode::FullSystem];

    /// Paper-style label.
    pub fn name(self) -> &'static str {
        match self {
            HilMode::HwOnly => "HW-only",
            HilMode::HwComm => "HW+comm.",
            HilMode::FullSystem => "Full-system",
        }
    }
}

impl std::fmt::Display for HilMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a HIL run.
#[derive(Debug, Clone)]
pub struct HilConfig {
    /// The Picos core configuration.
    pub picos: PicosConfig,
    /// Number of workers executing tasks.
    pub workers: usize,
    /// Platform cost model.
    pub cost: HilCostModel,
}

impl HilConfig {
    /// The paper's balanced configuration with `workers` workers.
    pub fn balanced(workers: usize) -> Self {
        HilConfig {
            picos: PicosConfig::balanced(),
            workers,
            cost: HilCostModel::default(),
        }
    }
}

/// Errors from a HIL run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HilError {
    /// The platform stopped with unfinished work.
    Stalled {
        /// Tasks executed before the stall.
        executed: usize,
        /// Total tasks in the trace.
        total: usize,
        /// Time of the stall.
        at: u64,
    },
}

impl std::fmt::Display for HilError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HilError::Stalled {
                executed,
                total,
                at,
            } => {
                write!(
                    f,
                    "platform stalled at cycle {at} after {executed}/{total} tasks"
                )
            }
        }
    }
}

impl std::error::Error for HilError {}

/// Runs a trace through the platform in the given mode; returns the
/// schedule and, in the report's `engine` field, a label like
/// `"picos-hw-only"`.
///
/// # Errors
///
/// Returns [`HilError::Stalled`] if the run cannot complete (this would
/// indicate an engine bug; the configuration itself is validated by
/// [`PicosSystem::new`]).
pub fn run_hil(trace: &Trace, mode: HilMode, cfg: &HilConfig) -> Result<ExecReport, HilError> {
    match mode {
        HilMode::HwOnly => run_hw_only(trace, cfg),
        HilMode::HwComm => run_hw_comm(trace, cfg),
        HilMode::FullSystem => run_full_system(trace, cfg),
    }
}

/// Collects the per-run Picos statistics alongside the report.
///
/// Same as [`run_hil`] but also returns the core's counters (DM conflicts
/// for Table II, stalls, peaks).
///
/// # Errors
///
/// See [`run_hil`].
pub fn run_hil_with_stats(
    trace: &Trace,
    mode: HilMode,
    cfg: &HilConfig,
) -> Result<(ExecReport, picos_core::Stats), HilError> {
    // The drivers below each build their own system; rebuild here with the
    // same deterministic behaviour to expose the stats.
    match mode {
        HilMode::HwOnly => run_hw_only_impl(trace, cfg),
        HilMode::HwComm => run_hw_comm_impl(trace, cfg),
        HilMode::FullSystem => run_full_system_impl(trace, cfg),
    }
}

fn run_hw_only(trace: &Trace, cfg: &HilConfig) -> Result<ExecReport, HilError> {
    run_hw_only_impl(trace, cfg).map(|(r, _)| r)
}

fn run_hw_comm(trace: &Trace, cfg: &HilConfig) -> Result<ExecReport, HilError> {
    run_hw_comm_impl(trace, cfg).map(|(r, _)| r)
}

fn run_full_system(trace: &Trace, cfg: &HilConfig) -> Result<ExecReport, HilError> {
    run_full_system_impl(trace, cfg).map(|(r, _)| r)
}

struct RunLog {
    start: Vec<u64>,
    end: Vec<u64>,
    order: Vec<u32>,
}

impl RunLog {
    fn new(n: usize) -> Self {
        RunLog {
            start: vec![0; n],
            end: vec![0; n],
            order: Vec::with_capacity(n),
        }
    }

    fn begin(&mut self, task: u32, at: u64, dur: u64) -> u64 {
        self.start[task as usize] = at;
        self.end[task as usize] = at + dur;
        self.order.push(task);
        at + dur
    }

    fn into_report(self, engine: &str, workers: usize, trace: &Trace) -> ExecReport {
        ExecReport {
            engine: engine.into(),
            workers,
            makespan: self.end.iter().copied().max().unwrap_or(0),
            sequential: trace.sequential_time(),
            order: self.order,
            start: self.start,
            end: self.end,
        }
    }
}

fn min_next(cands: &[Option<u64>]) -> Option<u64> {
    cands.iter().flatten().copied().min()
}

fn run_hw_only_impl(
    trace: &Trace,
    cfg: &HilConfig,
) -> Result<(ExecReport, picos_core::Stats), HilError> {
    let mut sys = PicosSystem::new(cfg.picos.clone());
    let n = trace.len();
    let mut workers = Workers::new(cfg.workers);
    let mut log = RunLog::new(n);
    let mut next_submit = 0usize;
    // Without taskwait barriers every task is pre-loadable: bulk-submit
    // once with a pre-sized queue instead of drip-feeding in the loop
    // (cycle-identical — the first loop pass would submit all of them at
    // t = 0 anyway).
    if trace.barriers().is_empty() {
        sys.submit_all(trace);
        next_submit = n;
    }
    let mut done_count = 0usize;
    let mut t = 0u64;
    loop {
        sys.advance_to(t);
        let mut touched = false;
        while let Some((task, slot)) = workers.pop_done_at(t) {
            sys.notify_finished(FinishedReq {
                task: TaskId::new(task),
                slot,
            });
            done_count += 1;
            touched = true;
        }
        // Pre-load every task the taskwait structure allows (all of them
        // when the trace has no barriers).
        while next_submit < trace.creation_limit(done_count) {
            let task = &trace.tasks()[next_submit];
            sys.submit(task.id, task.deps.clone());
            next_submit += 1;
            touched = true;
        }
        if touched {
            sys.advance_to(t);
        }
        while workers.idle() > 0 {
            let Some(r) = sys.pop_ready() else { break };
            let st = t + cfg.cost.dispatch;
            let dur = trace.tasks()[r.task.index()].duration;
            let end = log.begin(r.task.raw(), st, dur);
            workers.start(end, r.task.raw(), r.slot);
        }
        match min_next(&[sys.next_event_time(), workers.next_done()]) {
            Some(tn) => t = tn,
            None => break,
        }
    }
    if log.order.len() != n || sys.in_flight() != 0 || workers.busy() {
        return Err(HilError::Stalled {
            executed: log.order.len(),
            total: n,
            at: t,
        });
    }
    let stats = sys.stats();
    Ok((log.into_report("picos-hw-only", cfg.workers, trace), stats))
}

fn run_hw_comm_impl(
    trace: &Trace,
    cfg: &HilConfig,
) -> Result<(ExecReport, picos_core::Stats), HilError> {
    let mut sys = PicosSystem::new(cfg.picos.clone());
    let n = trace.len();
    let mut workers = Workers::new(cfg.workers);
    let mut bus = Bus::new(cfg.cost.axi_link());
    let mut log = RunLog::new(n);
    let mut next_send = 0usize;
    let mut newtasks_in_bus = 0usize;
    let mut inflight_ready = 0usize;
    let mut done_count = 0usize;
    let mut t = 0u64;
    loop {
        sys.advance_to(t);
        let mut touched = false;
        while let Some((task, slot)) = workers.pop_done_at(t) {
            bus.send(t, BusMsg::Finish(task, slot));
            done_count += 1;
            touched = true;
        }
        while let Some(msg) = bus.pop_delivery_at(t) {
            touched = true;
            match msg {
                BusMsg::NewTask(i) => {
                    let task = &trace.tasks()[i as usize];
                    sys.submit(task.id, task.deps.clone());
                    newtasks_in_bus -= 1;
                }
                BusMsg::Ready(task, slot) => {
                    let dur = trace.tasks()[task as usize].duration;
                    let end = log.begin(task, t, dur);
                    workers.start(end, task, slot);
                    inflight_ready -= 1;
                }
                BusMsg::Finish(task, slot) => {
                    sys.notify_finished(FinishedReq {
                        task: TaskId::new(task),
                        slot,
                    });
                }
            }
        }
        if touched {
            sys.advance_to(t);
        }
        // Feed new tasks while the SR0 FIFO has room and the taskwait
        // structure allows.
        while next_send < trace.creation_limit(done_count)
            && newtasks_in_bus + sys.pending_new() < cfg.cost.sr_queue
        {
            bus.send(t, BusMsg::NewTask(next_send as u32));
            newtasks_in_bus += 1;
            next_send += 1;
        }
        // Retrieve ready tasks for free workers.
        while sys.ready_len() > 0 && workers.idle() > inflight_ready {
            let r = sys.pop_ready().expect("ready_len checked");
            bus.send(t, BusMsg::Ready(r.task.raw(), r.slot));
            inflight_ready += 1;
        }
        match min_next(&[
            sys.next_event_time(),
            workers.next_done(),
            bus.next_delivery(),
        ]) {
            Some(tn) => t = tn,
            None => break,
        }
    }
    if log.order.len() != n || sys.in_flight() != 0 || bus.in_flight() != 0 || workers.busy() {
        return Err(HilError::Stalled {
            executed: log.order.len(),
            total: n,
            at: t,
        });
    }
    let stats = sys.stats();
    Ok((log.into_report("picos-hw-comm", cfg.workers, trace), stats))
}

fn run_full_system_impl(
    trace: &Trace,
    cfg: &HilConfig,
) -> Result<(ExecReport, picos_core::Stats), HilError> {
    let mut sys = PicosSystem::new(cfg.picos.clone());
    let n = trace.len();
    let mut workers = Workers::new(cfg.workers);
    let mut bus = Bus::new(cfg.cost.axi_link());
    let mut log = RunLog::new(n);
    let mut finish_q: VecDeque<(u32, SlotRef)> = VecDeque::new();
    let mut next_create = 0usize;
    let mut newtasks_in_bus = 0usize;
    let mut inflight_ready = 0usize;
    let mut done_count = 0usize;
    let mut arm_free = cfg.cost.arm_startup;
    let mut t = 0u64;
    loop {
        sys.advance_to(t);
        let mut touched = false;
        while let Some((task, slot)) = workers.pop_done_at(t) {
            finish_q.push_back((task, slot));
            done_count += 1;
            touched = true;
        }
        while let Some(msg) = bus.pop_delivery_at(t) {
            touched = true;
            match msg {
                BusMsg::NewTask(i) => {
                    let task = &trace.tasks()[i as usize];
                    sys.submit(task.id, task.deps.clone());
                    newtasks_in_bus -= 1;
                }
                BusMsg::Ready(task, slot) => {
                    let dur = trace.tasks()[task as usize].duration;
                    let end = log.begin(task, t, dur);
                    workers.start(end, task, slot);
                    inflight_ready -= 1;
                }
                BusMsg::Finish(task, slot) => {
                    sys.notify_finished(FinishedReq {
                        task: TaskId::new(task),
                        slot,
                    });
                }
            }
        }
        if touched {
            sys.advance_to(t);
        }
        // The ARM core is a serial resource; one action per free slot, with
        // finish forwarding first (it releases downstream resources), then
        // ready retrieval, then creation of the next task.
        while arm_free <= t {
            if let Some((task, slot)) = finish_q.pop_front() {
                let done = t + cfg.cost.arm_finish;
                arm_free = bus.send(done, BusMsg::Finish(task, slot));
            } else if sys.ready_len() > 0 && workers.idle() > inflight_ready {
                let r = sys.pop_ready().expect("ready_len checked");
                let done = t + cfg.cost.arm_retrieve;
                let slot_end = bus.send(done, BusMsg::Ready(r.task.raw(), r.slot));
                arm_free = slot_end + cfg.cost.arm_dispatch;
                inflight_ready += 1;
            } else if next_create < trace.creation_limit(done_count)
                && newtasks_in_bus + sys.pending_new() < cfg.cost.sr_queue
            {
                let task = &trace.tasks()[next_create];
                let done = t + cfg.cost.arm_create + cfg.cost.arm_submit(task.num_deps());
                arm_free = bus.send(done, BusMsg::NewTask(next_create as u32));
                newtasks_in_bus += 1;
                next_create += 1;
            } else {
                break;
            }
        }
        let arm_pending = !finish_q.is_empty()
            || (sys.ready_len() > 0 && workers.idle() > inflight_ready)
            || (next_create < trace.creation_limit(done_count)
                && newtasks_in_bus + sys.pending_new() < cfg.cost.sr_queue);
        let arm_cand = if arm_pending && arm_free > t {
            Some(arm_free)
        } else {
            None
        };
        match min_next(&[
            sys.next_event_time(),
            workers.next_done(),
            bus.next_delivery(),
            arm_cand,
        ]) {
            Some(tn) => t = tn,
            None => break,
        }
    }
    if log.order.len() != n
        || sys.in_flight() != 0
        || bus.in_flight() != 0
        || !finish_q.is_empty()
        || workers.busy()
    {
        return Err(HilError::Stalled {
            executed: log.order.len(),
            total: n,
            at: t,
        });
    }
    let stats = sys.stats();
    Ok((log.into_report("picos-full", cfg.workers, trace), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_core::{DmDesign, TsPolicy};
    use picos_trace::gen;

    #[test]
    fn all_modes_complete_and_validate_on_synthetics() {
        for case in gen::Case::ALL {
            let tr = gen::synthetic(case);
            for mode in HilMode::ALL {
                let cfg = HilConfig::balanced(12);
                let r = run_hil(&tr, mode, &cfg).unwrap_or_else(|e| panic!("{case:?} {mode}: {e}"));
                r.validate(&tr)
                    .unwrap_or_else(|e| panic!("{case:?} {mode}: {e}"));
            }
        }
    }

    #[test]
    fn mode_overheads_are_ordered() {
        // HW-only < HW+comm < Full-system makespan on the same trace.
        let tr = gen::synthetic(gen::Case::Case2);
        let cfg = HilConfig::balanced(12);
        let hw = run_hil(&tr, HilMode::HwOnly, &cfg).unwrap().makespan;
        let comm = run_hil(&tr, HilMode::HwComm, &cfg).unwrap().makespan;
        let full = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap().makespan;
        assert!(hw < comm, "{hw} !< {comm}");
        assert!(comm < full, "{comm} !< {full}");
    }

    #[test]
    fn real_app_completes_in_full_system() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(256));
        let cfg = HilConfig::balanced(8);
        let r = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap();
        r.validate(&tr).unwrap();
        assert!(r.speedup() > 1.0, "speedup {}", r.speedup());
    }

    #[test]
    fn speedup_grows_with_workers_on_parallel_app() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(128));
        let s2 = run_hil(&tr, HilMode::FullSystem, &HilConfig::balanced(2))
            .unwrap()
            .speedup();
        let s8 = run_hil(&tr, HilMode::FullSystem, &HilConfig::balanced(8))
            .unwrap()
            .speedup();
        assert!(s8 > s2 * 1.5, "s2={s2} s8={s8}");
    }

    #[test]
    fn dm_designs_rank_on_clustered_heat() {
        // Heat's contiguous blocks: Pearson must beat the direct designs
        // (paper, Figure 8 first row).
        let tr = gen::heat(gen::HeatConfig::paper(64));
        let mut speeds = std::collections::HashMap::new();
        for dm in DmDesign::ALL {
            let cfg = HilConfig {
                picos: PicosConfig::baseline(dm),
                ..HilConfig::balanced(12)
            };
            let (r, stats) = run_hil_with_stats(&tr, HilMode::HwOnly, &cfg).unwrap();
            r.validate(&tr).unwrap();
            speeds.insert(dm, (r.speedup(), stats.dm_conflicts));
        }
        let (sp, cp) = speeds[&DmDesign::PearsonEightWay];
        let (s8, c8) = speeds[&DmDesign::EightWay];
        assert!(cp < c8, "pearson conflicts {cp} !< 8way {c8}");
        assert!(sp >= s8 * 0.95, "pearson {sp} worse than 8way {s8}");
    }

    #[test]
    fn lifo_policy_runs_and_validates() {
        let tr = gen::lu(gen::LuConfig::paper(128));
        let cfg = HilConfig {
            picos: PicosConfig::balanced().with_ts_policy(TsPolicy::Lifo),
            ..HilConfig::balanced(8)
        };
        let r = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap();
        r.validate(&tr).unwrap();
    }

    #[test]
    fn deterministic_runs() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let cfg = HilConfig::balanced(16);
        let a = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap();
        let b = run_hil(&tr, HilMode::FullSystem, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mode_names() {
        assert_eq!(HilMode::HwOnly.to_string(), "HW-only");
        assert_eq!(HilMode::FullSystem.name(), "Full-system");
    }
}
