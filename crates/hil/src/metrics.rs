//! Latency/throughput metrics of Table IV.
//!
//! The paper evaluates the processing capacity of the prototype with three
//! numbers per testcase and mode:
//!
//! * **L1st** — the latency of the first task: cycles from the start of the
//!   run until the first task begins executing;
//! * **thrTask** — throughput for additional tasks: the steady-state
//!   execution-start interval between consecutive tasks;
//! * **thrDep** — throughput for additional dependences: `thrTask` divided
//!   by the average number of dependences per task (undefined for
//!   dependence-free streams, printed as `-` in the paper).

//!
//! The extraction itself lives in `picos_metrics` and works on *any*
//! engine's [`ExecReport`] (see [`ExecReport::synthetic_metrics`]); this
//! module keeps the historical HIL-flavoured entry point that reads the
//! average dependence count off the trace.

use picos_runtime::ExecReport;
use picos_trace::Trace;

pub use picos_metrics::SyntheticMetrics;

/// Extracts the Table IV metrics from a run.
///
/// # Panics
///
/// Panics if the report is empty.
pub fn synthetic_metrics(report: &ExecReport, trace: &Trace) -> SyntheticMetrics {
    report.synthetic_metrics(trace.stats().avg_deps())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_hil, HilConfig, HilMode};
    use picos_trace::gen;

    fn metrics(case: gen::Case, mode: HilMode) -> SyntheticMetrics {
        let tr = gen::synthetic(case);
        let cfg = HilConfig::balanced(12);
        let r = run_hil(&tr, mode, &cfg).unwrap();
        synthetic_metrics(&r, &tr)
    }

    #[test]
    fn case1_hw_only_matches_paper_magnitudes() {
        // Paper: L1st 45, thrTask 15.
        let m = metrics(gen::Case::Case1, HilMode::HwOnly);
        assert!((30..=60).contains(&m.l1st), "L1st {}", m.l1st);
        assert!(
            (12.0..=20.0).contains(&m.thr_task),
            "thrTask {}",
            m.thr_task
        );
        assert!(m.thr_dep.is_none());
    }

    #[test]
    fn case2_hw_only_dep_cost() {
        // Paper: L1st 73, thrTask 24, thrDep 24.
        let m = metrics(gen::Case::Case2, HilMode::HwOnly);
        assert!((55..=95).contains(&m.l1st), "L1st {}", m.l1st);
        assert!(
            (18.0..=32.0).contains(&m.thr_task),
            "thrTask {}",
            m.thr_task
        );
        let d = m.thr_dep.unwrap();
        assert!((18.0..=32.0).contains(&d), "thrDep {d}");
    }

    #[test]
    fn case3_hw_only_pipelines_deps() {
        // Paper: L1st 312, thrTask 243, thrDep 16: the per-dependence cost
        // pipelines down towards the DCT initiation interval.
        let m = metrics(gen::Case::Case3, HilMode::HwOnly);
        assert!((240..=400).contains(&m.l1st), "L1st {}", m.l1st);
        assert!(
            (200.0..=300.0).contains(&m.thr_task),
            "thrTask {}",
            m.thr_task
        );
        let d = m.thr_dep.unwrap();
        assert!((13.0..=20.0).contains(&d), "thrDep {d}");
    }

    #[test]
    fn comm_mode_is_bus_bound() {
        // Paper: thrTask ~740 for every case in HW+comm mode.
        for case in [gen::Case::Case1, gen::Case::Case3, gen::Case::Case7] {
            let m = metrics(case, HilMode::HwComm);
            assert!(
                (650.0..=850.0).contains(&m.thr_task),
                "{case:?}: thrTask {}",
                m.thr_task
            );
        }
    }

    #[test]
    fn full_system_adds_arm_overhead() {
        // Paper: Case1 thrTask 2729, L1st 3879.
        let m = metrics(gen::Case::Case1, HilMode::FullSystem);
        assert!(
            (2_300.0..=3_300.0).contains(&m.thr_task),
            "thrTask {}",
            m.thr_task
        );
        assert!((2_800..=4_800).contains(&m.l1st), "L1st {}", m.l1st);
    }

    #[test]
    fn full_system_thr_dep_drops_with_many_deps() {
        // Paper: Case3 thrDep 228 in Full-system: per-dependence cost is
        // amortized because the ARM-side cost is per task.
        let m1 = metrics(gen::Case::Case2, HilMode::FullSystem);
        let m15 = metrics(gen::Case::Case3, HilMode::FullSystem);
        let d1 = m1.thr_dep.unwrap();
        let d15 = m15.thr_dep.unwrap();
        assert!(d15 < d1 / 5.0, "thrDep must amortize: {d1} vs {d15}");
    }
}
