//! Worker pool and AXI bus helpers for the HIL drivers.

use picos_core::SlotRef;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pool of workers executing tasks for their trace duration.
#[derive(Debug)]
pub(crate) struct Workers {
    heap: BinaryHeap<Reverse<(u64, u32, SlotRef)>>,
    idle: usize,
    total: usize,
}

impl Workers {
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "need at least one worker");
        Workers {
            heap: BinaryHeap::new(),
            idle: total,
            total,
        }
    }

    /// Free workers right now.
    pub fn idle(&self) -> usize {
        self.idle
    }

    /// Whether any task is currently executing.
    pub fn busy(&self) -> bool {
        self.idle < self.total
    }

    /// Starts a task that will complete at `end`.
    ///
    /// # Panics
    ///
    /// Panics if no worker is free.
    pub fn start(&mut self, end: u64, task: u32, slot: SlotRef) {
        assert!(self.idle > 0, "no free worker");
        self.idle -= 1;
        self.heap.push(Reverse((end, task, slot)));
    }

    /// Earliest completion time among running tasks.
    pub fn next_done(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops a task completing exactly at `t`, freeing its worker.
    pub fn pop_done_at(&mut self, t: u64) -> Option<(u32, SlotRef)> {
        match self.heap.peek() {
            Some(Reverse((d, _, _))) if *d == t => {
                let Reverse((_, task, slot)) = self.heap.pop().expect("peeked");
                self.idle += 1;
                Some((task, slot))
            }
            _ => None,
        }
    }
}

/// Messages crossing the AXI bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum BusMsg {
    /// A new task travelling to the Picos GW.
    NewTask(u32),
    /// A ready task travelling to a worker.
    Ready(u32, SlotRef),
    /// A finished-task notification travelling to the Picos GW.
    Finish(u32, SlotRef),
}

/// A serializing bus: one message at a time, each occupying the bus for
/// `occupancy` cycles and arriving `latency` cycles after its slot ends.
#[derive(Debug)]
pub(crate) struct Bus {
    occupancy: u64,
    latency: u64,
    free_at: u64,
    deliveries: BinaryHeap<Reverse<(u64, u64, BusMsg)>>,
    seq: u64,
}

impl Bus {
    pub fn new(occupancy: u64, latency: u64, setup: u64) -> Self {
        Bus {
            occupancy,
            latency,
            free_at: setup,
            deliveries: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Queues a message at time `t`; returns the time its bus slot ends.
    pub fn send(&mut self, t: u64, msg: BusMsg) -> u64 {
        let s = self.free_at.max(t);
        self.free_at = s + self.occupancy;
        self.seq += 1;
        self.deliveries
            .push(Reverse((self.free_at + self.latency, self.seq, msg)));
        self.free_at
    }

    /// Earliest pending delivery time.
    pub fn next_delivery(&self) -> Option<u64> {
        self.deliveries.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops a message delivered exactly at `t`.
    pub fn pop_delivery_at(&mut self, t: u64) -> Option<BusMsg> {
        match self.deliveries.peek() {
            Some(Reverse((d, _, _))) if *d == t => {
                let Reverse((_, _, m)) = self.deliveries.pop().expect("peeked");
                Some(m)
            }
            _ => None,
        }
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.deliveries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_lifecycle() {
        let mut w = Workers::new(2);
        assert_eq!(w.idle(), 2);
        w.start(10, 0, SlotRef::new(0, 0));
        w.start(5, 1, SlotRef::new(0, 1));
        assert_eq!(w.idle(), 0);
        assert!(w.busy());
        assert_eq!(w.next_done(), Some(5));
        assert!(w.pop_done_at(4).is_none());
        assert_eq!(w.pop_done_at(5), Some((1, SlotRef::new(0, 1))));
        assert_eq!(w.idle(), 1);
        assert_eq!(w.next_done(), Some(10));
    }

    #[test]
    #[should_panic(expected = "no free worker")]
    fn workers_overcommit_panics() {
        let mut w = Workers::new(1);
        w.start(10, 0, SlotRef::new(0, 0));
        w.start(20, 1, SlotRef::new(0, 1));
    }

    #[test]
    fn bus_serializes_messages() {
        let mut b = Bus::new(100, 10, 0);
        let e1 = b.send(0, BusMsg::NewTask(0));
        let e2 = b.send(0, BusMsg::NewTask(1));
        assert_eq!(e1, 100);
        assert_eq!(e2, 200, "second message waits for the first slot");
        assert_eq!(b.next_delivery(), Some(110));
        assert_eq!(b.pop_delivery_at(110), Some(BusMsg::NewTask(0)));
        assert_eq!(b.pop_delivery_at(110), None);
        assert_eq!(b.next_delivery(), Some(210));
        assert_eq!(b.in_flight(), 1);
    }

    #[test]
    fn bus_idle_gap_does_not_accumulate() {
        let mut b = Bus::new(100, 0, 0);
        b.send(0, BusMsg::NewTask(0));
        let end = b.send(1_000, BusMsg::NewTask(1));
        assert_eq!(end, 1_100, "bus restarts from the request time");
    }
}
