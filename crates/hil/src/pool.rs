//! Worker pool and serializing-link helpers shared by the HIL drivers and
//! the cluster model.
//!
//! [`Link`] is the delivery/service discipline of the paper's AXI Stream
//! interface, generalized over the message type and parameterized by a
//! [`crate::LinkModel`]: one message at a time, per-flit occupancy, fixed
//! delivery latency, one-time setup. The HIL bus is `Link<BusMsg>`; the
//! cluster crate instantiates it with its own inter-shard message type.

use crate::cost::LinkModel;
use picos_core::SlotRef;
use picos_trace::snap::{Dec, Enc, SnapError};
use picos_trace::Value;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pool of workers executing tasks for their trace duration.
///
/// Cloning is a deep copy — the fork primitive of the snapshot subsystem.
#[derive(Debug, Clone)]
pub struct Workers {
    heap: BinaryHeap<Reverse<(u64, u32, SlotRef)>>,
    idle: usize,
    total: usize,
}

impl Workers {
    /// Creates a pool of `total` workers, all idle.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "need at least one worker");
        Workers {
            heap: BinaryHeap::new(),
            idle: total,
            total,
        }
    }

    /// Free workers right now.
    pub fn idle(&self) -> usize {
        self.idle
    }

    /// Whether any task is currently executing.
    pub fn busy(&self) -> bool {
        self.idle < self.total
    }

    /// Starts a task that will complete at `end`.
    ///
    /// # Panics
    ///
    /// Panics if no worker is free.
    pub fn start(&mut self, end: u64, task: u32, slot: SlotRef) {
        assert!(self.idle > 0, "no free worker");
        self.idle -= 1;
        self.heap.push(Reverse((end, task, slot)));
    }

    /// Earliest completion time among running tasks.
    pub fn next_done(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops a task completing exactly at `t`, freeing its worker.
    pub fn pop_done_at(&mut self, t: u64) -> Option<(u32, SlotRef)> {
        match self.heap.peek() {
            Some(Reverse((d, _, _))) if *d == t => {
                let Reverse((_, task, slot)) = self.heap.pop().expect("peeked");
                self.idle += 1;
                Some((task, slot))
            }
            _ => None,
        }
    }

    /// Fail-stops one worker (fault injection): capacity shrinks by one
    /// permanently. A busy worker dies first — its in-flight task is
    /// returned (with the TM slot it still holds) so the caller can
    /// re-execute it; with no task running an idle worker dies and `None`
    /// is returned. The earliest-completing task is the deterministic
    /// victim. A no-op returning `None` once capacity is exhausted.
    pub fn fail_one(&mut self) -> Option<(u32, SlotRef)> {
        if let Some(Reverse((_, task, slot))) = self.heap.pop() {
            self.total -= 1;
            return Some((task, slot));
        }
        if self.total > 0 && self.idle > 0 {
            self.total -= 1;
            self.idle -= 1;
        }
        None
    }

    /// Serializes the pool (running tasks in ascending completion order,
    /// plus the live capacity — fail-stop faults shrink it).
    pub fn save_state(&self) -> Value {
        let mut heap: Vec<(u64, u32, SlotRef)> = self.heap.iter().map(|r| r.0).collect();
        heap.sort_unstable();
        let mut e = Enc::new();
        e.usize(self.total)
            .usize(self.idle)
            .seq(heap, |e, (end, task, slot)| {
                e.u64(end)
                    .u32(task)
                    .u64(slot.trs as u64)
                    .u64(slot.entry as u64);
            });
        e.done()
    }

    /// Overwrites the pool from [`Workers::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or an inconsistent
    /// occupancy (`running != total - idle`).
    pub fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        let mut d = Dec::new(v, "workers")?;
        let total = d.usize()?;
        let idle = d.usize()?;
        let heap = d.seq(|d| {
            Ok((
                d.u64()?,
                d.u32()?,
                SlotRef::new(d.u64()? as u8, d.u64()? as u16),
            ))
        })?;
        if idle > total || heap.len() != total - idle {
            return Err(SnapError::new("workers: occupancy mismatch"));
        }
        self.total = total;
        self.idle = idle;
        self.heap = heap.into_iter().map(Reverse).collect();
        Ok(())
    }
}

/// Messages crossing the AXI bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BusMsg {
    /// A new task travelling to the Picos GW.
    NewTask(u32),
    /// A ready task travelling to a worker.
    Ready(u32, SlotRef),
    /// A finished-task notification travelling to the Picos GW.
    Finish(u32, SlotRef),
}

/// The HIL platform's AXI Stream bus.
pub(crate) type Bus = Link<BusMsg>;

/// A pending delivery; ordered by `(time, seq)` only, so the message type
/// needs no ordering of its own.
#[derive(Debug, Clone)]
struct LinkEv<T> {
    at: u64,
    seq: u64,
    msg: T,
}

impl<T> PartialEq for LinkEv<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for LinkEv<T> {}
impl<T> PartialOrd for LinkEv<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for LinkEv<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A serializing link following a [`LinkModel`]: one message at a time,
/// each occupying the link for its flit count times the model's occupancy
/// and arriving `latency` cycles after its slot ends. Deliveries preserve
/// send order among equal-time messages.
#[derive(Debug, Clone)]
pub struct Link<T> {
    model: LinkModel,
    free_at: u64,
    deliveries: BinaryHeap<Reverse<LinkEv<T>>>,
    seq: u64,
}

impl<T> Link<T> {
    /// Creates an idle link; the first slot starts after the model's setup.
    pub fn new(model: LinkModel) -> Self {
        Link {
            free_at: model.setup,
            model,
            deliveries: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// The cost model this link was built with.
    pub fn model(&self) -> &LinkModel {
        &self.model
    }

    /// Queues a single-word message at time `t`; returns the time its link
    /// slot ends.
    pub fn send(&mut self, t: u64, msg: T) -> u64 {
        self.send_words(t, msg, 1)
    }

    /// Queues a message of `words` payload words at time `t`; the link is
    /// occupied for one `occupancy` per flit. Returns the slot-end time.
    pub fn send_words(&mut self, t: u64, msg: T, words: usize) -> u64 {
        self.send_words_delayed(t, msg, words, 0)
    }

    /// Like [`Link::send_words`], but the delivery ages `extra` cycles on
    /// top of the model latency (fault-injection jitter). Occupancy — and
    /// therefore every later message's slot — is unchanged: with
    /// `extra == 0` this is exactly `send_words`.
    pub fn send_words_delayed(&mut self, t: u64, msg: T, words: usize, extra: u64) -> u64 {
        let s = self.free_at.max(t);
        self.free_at = s + self.model.occupancy * self.model.flits(words);
        self.seq += 1;
        self.deliveries.push(Reverse(LinkEv {
            at: self.free_at + self.model.latency + extra,
            seq: self.seq,
            msg,
        }));
        self.free_at
    }

    /// Earliest pending delivery time.
    pub fn next_delivery(&self) -> Option<u64> {
        self.deliveries.peek().map(|Reverse(e)| e.at)
    }

    /// Pops a message delivered exactly at `t`.
    pub fn pop_delivery_at(&mut self, t: u64) -> Option<T> {
        match self.deliveries.peek() {
            Some(Reverse(e)) if e.at == t => {
                let Reverse(e) = self.deliveries.pop().expect("peeked");
                Some(e.msg)
            }
            _ => None,
        }
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.deliveries.len()
    }

    /// Serializes the link state (model as a restore guard, pending
    /// deliveries in `(time, seq)` order), encoding each message with
    /// `enc_msg`.
    pub fn save_state_with(&self, enc_msg: impl Fn(&mut Enc, &T)) -> Value {
        let mut evs: Vec<&LinkEv<T>> = self.deliveries.iter().map(|r| &r.0).collect();
        evs.sort_unstable_by_key(|e| (e.at, e.seq));
        let mut e = Enc::new();
        e.u64(self.model.occupancy)
            .u64(self.model.latency)
            .u64(self.model.setup)
            .usize(self.model.width)
            .u64(self.free_at)
            .u64(self.seq)
            .seq(evs, |e, ev| {
                e.u64(ev.at).u64(ev.seq);
                enc_msg(e, &ev.msg);
            });
        e.done()
    }

    /// Overwrites the link from [`Link::save_state_with`] output, decoding
    /// each message with `dec_msg`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or when the snapshot was
    /// taken under a different [`LinkModel`].
    pub fn load_state_with(
        &mut self,
        v: &Value,
        dec_msg: impl Fn(&mut Dec) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        use picos_trace::snap::guard;
        let mut d = Dec::new(v, "link")?;
        guard("link occupancy", d.u64()?, self.model.occupancy)?;
        guard("link latency", d.u64()?, self.model.latency)?;
        guard("link setup", d.u64()?, self.model.setup)?;
        guard("link width", d.usize()? as u64, self.model.width as u64)?;
        let free_at = d.u64()?;
        let seq = d.u64()?;
        let evs = d.seq(|d| {
            Ok(LinkEv {
                at: d.u64()?,
                seq: d.u64()?,
                msg: dec_msg(d)?,
            })
        })?;
        self.free_at = free_at;
        self.seq = seq;
        self.deliveries = evs.into_iter().map(Reverse).collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(occupancy: u64, latency: u64, setup: u64) -> Bus {
        Link::new(LinkModel {
            occupancy,
            latency,
            setup,
            width: 1,
        })
    }

    #[test]
    fn workers_lifecycle() {
        let mut w = Workers::new(2);
        assert_eq!(w.idle(), 2);
        w.start(10, 0, SlotRef::new(0, 0));
        w.start(5, 1, SlotRef::new(0, 1));
        assert_eq!(w.idle(), 0);
        assert!(w.busy());
        assert_eq!(w.next_done(), Some(5));
        assert!(w.pop_done_at(4).is_none());
        assert_eq!(w.pop_done_at(5), Some((1, SlotRef::new(0, 1))));
        assert_eq!(w.idle(), 1);
        assert_eq!(w.next_done(), Some(10));
    }

    #[test]
    #[should_panic(expected = "no free worker")]
    fn workers_overcommit_panics() {
        let mut w = Workers::new(1);
        w.start(10, 0, SlotRef::new(0, 0));
        w.start(20, 1, SlotRef::new(0, 1));
    }

    #[test]
    fn bus_serializes_messages() {
        let mut b = link(100, 10, 0);
        let e1 = b.send(0, BusMsg::NewTask(0));
        let e2 = b.send(0, BusMsg::NewTask(1));
        assert_eq!(e1, 100);
        assert_eq!(e2, 200, "second message waits for the first slot");
        assert_eq!(b.next_delivery(), Some(110));
        assert_eq!(b.pop_delivery_at(110), Some(BusMsg::NewTask(0)));
        assert_eq!(b.pop_delivery_at(110), None);
        assert_eq!(b.next_delivery(), Some(210));
        assert_eq!(b.in_flight(), 1);
    }

    #[test]
    fn bus_idle_gap_does_not_accumulate() {
        let mut b = link(100, 0, 0);
        b.send(0, BusMsg::NewTask(0));
        let end = b.send(1_000, BusMsg::NewTask(1));
        assert_eq!(end, 1_100, "bus restarts from the request time");
    }

    #[test]
    fn wide_payloads_occupy_per_flit() {
        let mut l: Link<u32> = Link::new(LinkModel {
            occupancy: 10,
            latency: 5,
            setup: 0,
            width: 4,
        });
        // 9 words at width 4 = 3 flits = 30 cycles of occupancy.
        assert_eq!(l.send_words(0, 7, 9), 30);
        assert_eq!(l.next_delivery(), Some(35));
        // A following single-word message queues behind all three flits.
        assert_eq!(l.send(0, 8), 40);
    }

    #[test]
    fn equal_time_deliveries_preserve_send_order() {
        let mut l: Link<u32> = Link::new(LinkModel {
            occupancy: 0,
            latency: 0,
            setup: 0,
            width: 1,
        });
        for i in 0..4 {
            l.send(0, i);
        }
        let mut got = Vec::new();
        while let Some(m) = l.pop_delivery_at(0) {
            got.push(m);
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
