//! Hardware-In-the-Loop platform model around the Picos core.
//!
//! Reproduces the embedded system of the paper's Section IV-B: the Picos
//! accelerator in the programmable logic, the AXI Stream interface with its
//! 200-300-cycle message cost, and the ARM-side software that creates tasks
//! and drives the close loop. The three operational modes of Table IV are
//! [`HilMode::HwOnly`], [`HilMode::HwComm`] and [`HilMode::FullSystem`].
//!
//! # Quick example
//!
//! ```
//! use picos_hil::{run_hil, synthetic_metrics, HilConfig, HilMode};
//! use picos_trace::gen;
//!
//! let trace = gen::synthetic(gen::Case::Case2);
//! let report = run_hil(&trace, HilMode::HwOnly, &HilConfig::balanced(12))?;
//! let m = synthetic_metrics(&report, &trace);
//! assert!(m.l1st > 0); // paper: 73 cycles
//! # Ok::<(), picos_hil::HilError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod metrics;
mod modes;
mod pool;

pub use cost::{HilCostModel, LinkModel};
pub use metrics::{synthetic_metrics, SyntheticMetrics};
pub use modes::{run_hil, run_hil_with_stats, HilConfig, HilError, HilMode, HilSession};
pub use pool::{Link, Workers};
