//! Analytic FPGA resource model for the Picos prototype (Table III).
//!
//! The paper reports LUT/FF/BRAM consumption of every memory and module on
//! the Zynq XC7Z020. Synthesis cannot be reproduced in software, but the
//! dominant terms are analytic: block-RAM count follows from memory
//! geometry and the RAMB36 aspect-ratio modes, comparator/control LUTs
//! scale with associativity and tag width. This crate models those terms,
//! parametrized by the same [`PicosConfig`] the simulator uses, so design
//! ablations (e.g. a 32-way DM) report resource costs consistently with the
//! paper's methodology (Section V-B).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use picos_core::{DmDesign, PicosConfig};

/// An FPGA device's resource totals (Table III header row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Total 6-input LUTs.
    pub luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// Total 36Kb block RAMs.
    pub bram36: u64,
}

/// The paper's device: XC7Z020-CLG484 on the Zedboard.
pub const XC7Z020: Device = Device {
    luts: 53_200,
    ffs: 106_400,
    bram36: 140,
};

/// A resource estimate in absolute units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceEstimate {
    /// 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36Kb block RAMs.
    pub bram36: u64,
}

impl ResourceEstimate {
    /// Percentage of the device, per resource class: `(luts%, ffs%, bram%)`.
    pub fn percent_of(&self, dev: Device) -> (f64, f64, f64) {
        (
            100.0 * self.luts as f64 / dev.luts as f64,
            100.0 * self.ffs as f64 / dev.ffs as f64,
            100.0 * self.bram36 as f64 / dev.bram36 as f64,
        )
    }
}

impl std::ops::Add for ResourceEstimate {
    type Output = ResourceEstimate;
    fn add(self, o: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.luts + o.luts,
            ffs: self.ffs + o.ffs,
            bram36: self.bram36 + o.bram36,
        }
    }
}

impl std::iter::Sum for ResourceEstimate {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ResourceEstimate::default(), |a, b| a + b)
    }
}

/// RAMB36 blocks needed for a memory of `entries` x `width_bits`.
///
/// Models the Xilinx aspect-ratio modes: a RAMB36 provides 72x512, 36x1024,
/// 18x2048, 9x4096 (and narrower). The synthesizer splits wide memories
/// across blocks; every memory takes at least one block.
pub fn bram_blocks(entries: u64, width_bits: u64) -> u64 {
    if entries == 0 || width_bits == 0 {
        return 0;
    }
    let width_mode: u64 = match entries {
        0..=512 => 72,
        513..=1024 => 36,
        1025..=2048 => 18,
        2049..=4096 => 9,
        _ => 4,
    };
    let splits = width_bits.div_ceil(width_mode);
    let depth_blocks: u64 = if entries <= 4096 {
        1
    } else {
        entries.div_ceil(4096)
    };
    (splits * depth_blocks).max(1)
}

/// Task Memory (TM0 + five TMX memories) of one TRS instance.
///
/// TM0 holds task id, dependence count and ready count; each TMX entry
/// holds three dependence records (VM address, chain slot, flags — 24 bits
/// each), the layout of Figure 3b.
pub fn tm_resources(tm_entries: u64) -> ResourceEstimate {
    let tm0 = bram_blocks(tm_entries, 44);
    let tmx = 5 * bram_blocks(tm_entries, 3 * 24);
    ResourceEstimate {
        luts: 180 + tm_entries / 8, // address decode + free-list encode
        ffs: 12,
        bram36: tm0 + tmx,
    }
}

/// Version Memory of one DCT instance.
pub fn vm_resources(vm_entries: u64) -> ResourceEstimate {
    // producer slot + consumer slot + counters + next link + flags.
    ResourceEstimate {
        luts: 160 + vm_entries / 16,
        ffs: 12,
        bram36: bram_blocks(vm_entries, 56),
    }
}

/// Dependence Memory of one DCT instance.
///
/// Each way keeps its 64-bit tags in its own block for parallel compare;
/// data fields (VM pointer, counters) are packed two ways per block. The
/// Pearson variant adds the substitution tables and the xor-fold logic.
pub fn dm_resources(design: DmDesign, sets: u64) -> ResourceEstimate {
    let ways = design.ways() as u64;
    let tag_brams = ways * bram_blocks(sets, 64);
    let data_brams = ways.div_ceil(2) * bram_blocks(sets, 2 * 20);
    let pearson_brams = if design.uses_pearson() { 2 } else { 0 };
    // Parallel 64-bit comparators + way-select priority mux + control.
    let luts = ways * 64 + ways * ways * 2 + 150 + if design.uses_pearson() { 200 } else { 0 };
    ResourceEstimate {
        luts,
        ffs: 40 + ways * 4,
        bram36: tag_brams + data_brams + pearson_brams,
    }
}

/// The full TRS module (TM plus readiness/chain control).
pub fn trs_resources(cfg: &PicosConfig) -> ResourceEstimate {
    let tm = tm_resources(cfg.tm_entries as u64);
    tm + ResourceEstimate {
        luts: 620,
        ffs: 610,
        bram36: 0,
    }
}

/// The full DCT module (DM + VM plus chain-tracking control).
pub fn dct_resources(cfg: &PicosConfig) -> ResourceEstimate {
    let dm = dm_resources(cfg.dm_design, cfg.dm_sets as u64);
    let vm = vm_resources(cfg.vm_entries as u64);
    dm + vm
        + ResourceEstimate {
            luts: 420,
            ffs: 240,
            bram36: 0,
        }
}

/// Gateway + Arbiter + Task Scheduler (simple control, no memories).
pub fn gw_arb_ts_resources(cfg: &PicosConfig) -> ResourceEstimate {
    // The arbiter crossbar grows with the instance counts.
    let lanes = (cfg.num_trs + cfg.num_dct) as u64;
    ResourceEstimate {
        luts: 600 + 45 * lanes,
        ffs: 380 + 22 * lanes,
        bram36: 0,
    }
}

/// The complete Picos design for a configuration.
pub fn full_picos_resources(cfg: &PicosConfig) -> ResourceEstimate {
    let trs: ResourceEstimate = (0..cfg.num_trs).map(|_| trs_resources(cfg)).sum();
    let dct: ResourceEstimate = (0..cfg.num_dct).map(|_| dct_resources(cfg)).sum();
    trs + dct + gw_arb_ts_resources(cfg)
}

/// One row of the Table III reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Row label as in the paper.
    pub name: String,
    /// Estimated resources.
    pub est: ResourceEstimate,
}

/// Regenerates the rows of the paper's Table III.
pub fn table3() -> Vec<Table3Row> {
    let base = PicosConfig::balanced();
    let cfg8 = PicosConfig::baseline(DmDesign::EightWay);
    let cfg16 = PicosConfig::baseline(DmDesign::SixteenWay);
    let row = |name: &str, est: ResourceEstimate| Table3Row {
        name: name.into(),
        est,
    };
    vec![
        row("TM", tm_resources(base.tm_entries as u64)),
        row("VM for 8way/P+8way", vm_resources(512)),
        row("VM for 16way", vm_resources(1024)),
        row("DM 8way", dm_resources(DmDesign::EightWay, 64)),
        row("DM 16way", dm_resources(DmDesign::SixteenWay, 64)),
        row("DM P+8way", dm_resources(DmDesign::PearsonEightWay, 64)),
        row("TRS", trs_resources(&cfg8)),
        row("DCT (DM P+8way)", dct_resources(&base)),
        row("GW+ARB+TS", gw_arb_ts_resources(&base)),
        row("Full Picos (DM P+8way)", full_picos_resources(&base)),
        // For completeness: the direct-hash alternatives.
        row("Full Picos (DM 8way)", full_picos_resources(&cfg8)),
        row("Full Picos (DM 16way)", full_picos_resources(&cfg16)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_quantization() {
        assert_eq!(bram_blocks(256, 44), 1);
        assert_eq!(bram_blocks(512, 72), 1);
        assert_eq!(bram_blocks(512, 73), 2);
        assert_eq!(bram_blocks(1024, 56), 2);
        assert_eq!(bram_blocks(64, 64), 1);
        assert_eq!(bram_blocks(0, 10), 0);
    }

    #[test]
    fn dm_designs_rank_as_paper() {
        // Table III: 8way < P+8way < 16way in BRAM.
        let b8 = dm_resources(DmDesign::EightWay, 64).bram36;
        let bp = dm_resources(DmDesign::PearsonEightWay, 64).bram36;
        let b16 = dm_resources(DmDesign::SixteenWay, 64).bram36;
        assert!(b8 < bp, "{b8} !< {bp}");
        assert!(bp < b16, "{bp} !< {b16}");
        // 16way roughly doubles 8way (paper: 9% -> 17%).
        assert!(b16 >= 2 * b8 - 2, "{b16} vs {b8}");
    }

    #[test]
    fn percentages_in_paper_ballpark() {
        // Loose windows around the paper's Table III percentages.
        let (lut, _, bram) = dm_resources(DmDesign::EightWay, 64).percent_of(XC7Z020);
        assert!((0.5..2.5).contains(&lut), "DM 8way LUT% {lut}");
        assert!((5.0..13.0).contains(&bram), "DM 8way BRAM% {bram}");

        let (lut, _, bram) = dm_resources(DmDesign::SixteenWay, 64).percent_of(XC7Z020);
        assert!((2.0..4.5).contains(&lut), "DM 16way LUT% {lut}");
        assert!((13.0..21.0).contains(&bram), "DM 16way BRAM% {bram}");

        let full = full_picos_resources(&PicosConfig::balanced());
        let (lut, ff, bram) = full.percent_of(XC7Z020);
        assert!((4.0..8.0).contains(&lut), "full LUT% {lut}");
        assert!((0.8..2.0).contains(&ff), "full FF% {ff}");
        assert!((12.0..22.0).contains(&bram), "full BRAM% {bram}");
    }

    #[test]
    fn full_is_sum_of_modules() {
        let cfg = PicosConfig::balanced();
        let sum = trs_resources(&cfg) + dct_resources(&cfg) + gw_arb_ts_resources(&cfg);
        assert_eq!(full_picos_resources(&cfg), sum);
    }

    #[test]
    fn future_architecture_scales_instances() {
        let one = full_picos_resources(&PicosConfig::balanced());
        let four = full_picos_resources(&PicosConfig::future(4, DmDesign::PearsonEightWay));
        assert!(
            four.bram36 > 3 * one.bram36,
            "{} vs {}",
            four.bram36,
            one.bram36
        );
        assert!(four.luts > 3 * one.luts);
    }

    #[test]
    fn table3_has_paper_rows() {
        let t = table3();
        assert!(t.len() >= 10);
        assert!(t.iter().any(|r| r.name == "TM"));
        assert!(t.iter().any(|r| r.name == "Full Picos (DM P+8way)"));
    }

    #[test]
    fn estimates_fit_the_device() {
        // Even the 16-way variant fits the XC7Z020, as the paper built it.
        for cfg in [
            PicosConfig::baseline(DmDesign::SixteenWay),
            PicosConfig::balanced(),
        ] {
            let full = full_picos_resources(&cfg);
            assert!(full.luts < XC7Z020.luts);
            assert!(full.bram36 < XC7Z020.bram36);
        }
    }

    #[test]
    fn sum_and_add() {
        let a = ResourceEstimate {
            luts: 1,
            ffs: 2,
            bram36: 3,
        };
        let b = ResourceEstimate {
            luts: 10,
            ffs: 20,
            bram36: 30,
        };
        let s: ResourceEstimate = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
    }
}
