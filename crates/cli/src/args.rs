//! Minimal argument parsing for the `picos` CLI (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments and `--key
/// value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
}

/// Options that are boolean flags: present or absent, never consuming a
/// value (they parse as `"true"`).
const FLAGS: &[&str] = &["critical-path", "help"];

impl Args {
    /// Parses an iterator of arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error when no subcommand is present or a non-flag
    /// `--key` misses its value.
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let command = argv.next().ok_or_else(usage)?;
        let mut positional = Vec::new();
        let mut options = HashMap::new();
        while let Some(a) = argv.next() {
            if let Some(key) = a.strip_prefix("--") {
                if FLAGS.contains(&key) {
                    options.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let value = argv
                    .next()
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                options.insert(key.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Ok(Args {
            command,
            positional,
            options,
        })
    }

    /// An option parsed to a type, with a default.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn opt<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// A required positional argument.
    ///
    /// # Errors
    ///
    /// Returns an error naming the argument when missing.
    pub fn pos(&self, idx: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument <{name}>\n{}", usage()))
    }
}

/// The usage string.
pub fn usage() -> String {
    "\
usage: picos <command> [args] [--key value ...]

<workload> is a trace file (*.json) or a generator name (see `picos apps`),
with --block <bs> selecting the block size for generated workloads.

commands:
  gen <app> --block <bs> [--out trace.json]     generate a paper workload
  stats <workload>                              print a Table-I style row
  run <workload> --engine <e> --workers <w>     run one engine
       engines: hw-only | hw-comm | full (alias: hil) | nanos | perfect
                | cluster
       options: --dm <8way|16way|p8way>  --ts <fifo|lifo>  --instances <n>
       cluster: --shards <n>  --policy <addr-hash|round-robin|locality>
                --link-latency <c> --link-occupancy <c> --link-width <w>
                --threads <n> parallel simulation threads (bit-identical
                to serial; needs threads <= shards)
                (--backend is accepted as an alias for --engine)
       faults:  --fault-seed <s> --drop-rate <p> --link-timeout <cycles>
                deterministic link-fault injection on the cluster
                interconnect (seeded drops with ack/retry recovery);
                prints faults: drops/retries/redeliveries/recoveries
       paced:   --paced <interarrival-cycles> [--window <in-flight cap>]
                open-loop streaming session; prints offered vs achieved
                rate and the backpressure ratio
       telemetry: --timeline <window-cycles|auto> attaches a cycle-windowed
                sampler (per-unit busy cycles, queue/memory occupancy;
                `auto` picks a power-of-two window from the workload size);
                emit with --metrics-json <path> and/or --metrics-csv <path>
       spans:   --trace-out <file> records task-lifecycle spans and writes
                a Chrome Trace Event / Perfetto JSON trace of the run
                (open in ui.perfetto.dev); --critical-path walks the spans
                backward from the last finish and prints the makespan
                attributed by category (exec, dispatch, queueing, link...);
                both compose with --paced (spans of the streamed run)
  sweep <workload> --engine <e,e,...|all>       speedup vs workers (2..24),
       [--threads <n>] [--out results.csv]      cells run in parallel
       [--shards <n>] [--link-latency <c>]      (cluster cells)
       [--cluster-threads <n>]                  parallel cluster engine,
                                                capped at each cell's
                                                shard count
       [--timeline <w>]                         per-cell telemetry; with
                                                --out also writes
                                                <out>.timeline.csv
       [--critical-path]                        per-cell makespan
                                                attribution in the
                                                critical_path column
  whatif <workload> [--axis dm|shards]          config search on a live
       [--prefix <0..1>] [--workers <w>]        session: the first --prefix
       [--engine <e>] [--dm <d>] [--shards <n>] fraction of the workload is
                                                recorded into a journaled
                                                live session, the session is
                                                forked in memory for the
                                                baseline, and one replica
                                                per candidate DM design (or
                                                cluster shard count) replays
                                                the recorded arrival prefix;
                                                every replica receives the
                                                remaining suffix and the
                                                projected makespans are
                                                ranked (best config printed)
  serve [--addr <host:port>]                    multi-tenant session service:
       [--journal-dir <dir>]                    thousands of live sessions
       [--quota <n>] [--step-budget <n>]        multiplexed by a round-robin
       [--max-tenants <n>] [--scrape-window <c>] fair scheduler, each tenant
       [--checkpoint-every <steps>]             journaled for bit-exact crash
                                                recovery (--journal-dir).
       protocol: line-delimited JSON over TCP — open / submit / barrier /
                advance / drain-events / stats / scrape / checkpoint /
                close / shutdown;
                `shutdown` triggers graceful exit (listener closed, in-flight
                steps finished, journals flushed). --addr 127.0.0.1:0 binds
                an ephemeral port and prints the resolved address.
       --quota caps each tenant's accepted-but-unfinished tasks (admission
                control above the session window); --step-budget is the
                per-tenant step slice per scheduler round;
       --checkpoint-every persists a full engine snapshot per tenant every
                N scheduler steps and truncates its journal to the
                post-snapshot tail, so restart recovery replays a bounded
                tail (snapshot + tail) instead of the whole history
  resources [--dm <design>] [--instances <n>]   FPGA cost estimate
  apps                                          list available generators
  engines                                       list available backends
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, String> {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_positional_options() {
        let a = parse(&["run", "t.json", "--workers", "8", "--engine", "nanos"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.pos(0, "trace").unwrap(), "t.json");
        assert_eq!(a.opt("workers", 1usize).unwrap(), 8);
        assert_eq!(a.options["engine"], "nanos");
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["gen", "heat"]).unwrap();
        assert_eq!(a.opt("block", 64u64).unwrap(), 64);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&["run", "--workers"]).is_err());
    }

    #[test]
    fn flags_take_no_value() {
        // A flag at the end of the line, and one followed by a normal
        // option: neither may consume the next token.
        let a = parse(&["run", "t.json", "--critical-path"]).unwrap();
        assert_eq!(a.options["critical-path"], "true");
        let a = parse(&["run", "--critical-path", "--workers", "8"]).unwrap();
        assert!(a.options.contains_key("critical-path"));
        assert_eq!(a.opt("workers", 1usize).unwrap(), 8);
    }

    #[test]
    fn usage_covers_the_serve_subcommand() {
        let u = usage();
        assert!(
            u.contains("serve [--addr <host:port>]"),
            "serve line missing"
        );
        for opt in [
            "--journal-dir",
            "--quota",
            "--step-budget",
            "--max-tenants",
            "--scrape-window",
            "--checkpoint-every",
        ] {
            assert!(u.contains(opt), "usage misses serve option {opt}");
        }
        for verb in [
            "submit",
            "barrier",
            "drain-events",
            "scrape",
            "checkpoint",
            "shutdown",
        ] {
            assert!(u.contains(verb), "usage misses protocol verb {verb}");
        }
    }

    #[test]
    fn usage_covers_the_whatif_subcommand() {
        let u = usage();
        assert!(u.contains("whatif <workload>"), "whatif line missing");
        for opt in ["--axis dm|shards", "--prefix"] {
            assert!(u.contains(opt), "usage misses whatif option {opt}");
        }
    }

    #[test]
    fn help_is_a_flag_not_an_option() {
        // `picos serve --help` must parse (and later print usage) rather
        // than die with "option --help needs a value".
        let a = parse(&["serve", "--help"]).unwrap();
        assert!(a.options.contains_key("help"));
    }

    #[test]
    fn missing_command_is_error() {
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn bad_value_is_error() {
        let a = parse(&["run", "--workers", "lots"]).unwrap();
        assert!(a.opt("workers", 1usize).is_err());
    }

    #[test]
    fn missing_positional_is_error() {
        let a = parse(&["stats"]).unwrap();
        assert!(a.pos(0, "trace").is_err());
    }
}
