//! `picos` — command-line interface for the Picos reproduction.
//!
//! Generate the paper's workloads, run them through any execution engine
//! (all engines sit behind the uniform `picos_backend::ExecBackend` trait),
//! sweep worker counts and engines in parallel, and estimate FPGA resource
//! budgets. Run `picos` without arguments for usage.

mod args;

use args::{usage, Args};
use picos_backend::{
    pace, Admission, BackendSpec, ExecBackend, SessionConfig, SessionCore, SimSession, Sweep,
    Workload,
};
use picos_cluster::{FaultPlan, ShardPolicy};
use picos_core::{DmDesign, PicosConfig, Stats, TsPolicy};
use picos_hil::LinkModel;
use picos_metrics::{span, MetricSet, Timeline};
use picos_resources::{full_picos_resources, XC7Z020};
use picos_runtime::{replay_journal, JournaledSession};
use picos_trace::{gen, TaskGraph, TaskId, Trace};
use std::sync::Arc;

fn main() {
    let argv = std::env::args().skip(1);
    match Args::parse(argv).and_then(|a| dispatch(&a)) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn dispatch(a: &Args) -> Result<(), String> {
    // `picos <command> --help` prints usage without running the command
    // (notably: `picos serve --help` must not bind a socket).
    if a.options.contains_key("help") {
        println!("{}", usage());
        return Ok(());
    }
    match a.command.as_str() {
        "gen" => cmd_gen(a),
        "stats" => cmd_stats(a),
        "run" => cmd_run(a),
        "sweep" => cmd_sweep(a),
        "whatif" => cmd_whatif(a),
        "serve" => cmd_serve(a),
        "resources" => cmd_resources(a),
        "apps" => {
            for app in gen::App::ALL {
                println!("{app}  (block sizes: {:?})", app.paper_block_sizes());
            }
            println!("case1..case7  (synthetic testcases)");
            println!("stream  (open-loop arrival; --block sets the inter-arrival gap)");
            Ok(())
        }
        "engines" => {
            for spec in BackendSpec::ALL {
                println!("{spec}");
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn generate(name: &str, block: u64) -> Result<Trace, String> {
    if let Some(app) = gen::App::ALL.into_iter().find(|x| x.name() == name) {
        return Ok(app.generate(block));
    }
    if let Some(case) = gen::Case::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
    {
        return Ok(gen::synthetic(case));
    }
    if name == "stream" {
        // --block doubles as the mean inter-arrival gap for the open-loop
        // stream workload (its granularity knob).
        return Ok(gen::stream(gen::StreamConfig {
            interarrival: block,
            ..gen::StreamConfig::default()
        }));
    }
    Err(format!("unknown app {name}; try `picos apps`"))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Trace::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// A workload argument is either a trace file (`*.json`) or a generator
/// name with an optional `--block`.
fn load_workload(a: &Args, arg: &str) -> Result<Trace, String> {
    if arg.ends_with(".json") || std::path::Path::new(arg).exists() {
        load_trace(arg)
    } else {
        generate(arg, a.opt("block", 64u64)?)
    }
}

fn cmd_gen(a: &Args) -> Result<(), String> {
    let app = a.pos(0, "app")?;
    let block = a.opt("block", 64u64)?;
    let trace = generate(app, block)?;
    let out = a
        .options
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("{app}-{block}.json"));
    std::fs::write(&out, trace.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}: {} tasks", trace.len());
    Ok(())
}

fn cmd_stats(a: &Args) -> Result<(), String> {
    let trace = load_workload(a, a.pos(0, "trace")?)?;
    let s = trace.stats();
    let graph = picos_trace::TaskGraph::build(&trace);
    let p = graph.parallelism();
    println!("name:            {}", s.name);
    println!("tasks:           {}", s.num_tasks);
    println!("deps/task:       {}", s.dep_range());
    println!("avg task size:   {:.3e} cycles", s.avg_task_size);
    println!("sequential:      {:.3e} cycles", s.sequential_time as f64);
    println!("edges:           {}", graph.num_edges());
    println!("critical path:   {:.3e} cycles", p.critical_path as f64);
    println!("avg parallelism: {:.1}", p.avg_parallelism);
    println!("max width:       {}", p.max_width);
    println!("taskwaits:       {}", trace.barriers().len());
    Ok(())
}

fn picos_config(a: &Args) -> Result<PicosConfig, String> {
    let dm = parse_dm(a.opt("dm", "p8way".to_string())?.as_str())?;
    let instances = a.opt("instances", 1usize)?;
    let ts = parse_ts(a.opt("ts", "fifo".to_string())?.as_str())?;
    Ok(PicosConfig::future(instances, dm).with_ts_policy(ts))
}

fn parse_dm(s: &str) -> Result<DmDesign, String> {
    match s {
        "8way" => Ok(DmDesign::EightWay),
        "16way" => Ok(DmDesign::SixteenWay),
        "p8way" => Ok(DmDesign::PearsonEightWay),
        other => Err(format!("unknown DM design {other}")),
    }
}

/// The CLI-facing name of a DM design (inverse of [`parse_dm`]).
fn dm_name(d: DmDesign) -> &'static str {
    match d {
        DmDesign::EightWay => "8way",
        DmDesign::SixteenWay => "16way",
        DmDesign::PearsonEightWay => "p8way",
    }
}

fn parse_ts(s: &str) -> Result<TsPolicy, String> {
    match s {
        "fifo" => Ok(TsPolicy::Fifo),
        "lifo" => Ok(TsPolicy::Lifo),
        other => Err(format!("unknown TS policy {other}")),
    }
}

/// Parses a comma-separated engine list (`all` expands to every backend);
/// `--shards` applies to each cluster entry.
fn parse_engines(s: &str, shards: usize) -> Result<Vec<BackendSpec>, String> {
    let specs: Vec<BackendSpec> = if s == "all" {
        BackendSpec::ALL.to_vec()
    } else {
        s.split(',')
            .map(|e| {
                BackendSpec::parse(e.trim())
                    .ok_or_else(|| format!("unknown engine {e}\n{}", usage()))
            })
            .collect::<Result<_, _>>()?
    };
    Ok(specs
        .into_iter()
        .map(|spec| match spec {
            BackendSpec::Cluster(_) => BackendSpec::Cluster(shards),
            other => other,
        })
        .collect())
}

/// The engine name of a run/sweep invocation (`--backend` is an alias for
/// `--engine`, matching the cluster documentation).
fn engine_name(a: &Args) -> Result<String, String> {
    match a.options.get("backend") {
        Some(b) => Ok(b.clone()),
        None => a.opt("engine", "full".to_string()),
    }
}

/// Interconnect model for cluster runs, with per-knob overrides.
fn link_model(a: &Args) -> Result<LinkModel, String> {
    let d = LinkModel::interconnect();
    Ok(LinkModel {
        occupancy: a.opt("link-occupancy", d.occupancy)?,
        latency: a.opt("link-latency", d.latency)?,
        setup: d.setup,
        width: a.opt("link-width", d.width)?,
    })
}

/// The deterministic fault plan of a `run` invocation, when any fault
/// option is present (`--fault-seed`, `--drop-rate`, `--link-timeout`).
fn fault_plan(a: &Args) -> Result<Option<FaultPlan>, String> {
    let keys = ["fault-seed", "drop-rate", "link-timeout"];
    if !keys.iter().any(|k| a.options.contains_key(*k)) {
        return Ok(None);
    }
    let mut plan =
        FaultPlan::new(a.opt("fault-seed", 0u64)?).with_drop_rate(a.opt("drop-rate", 0.0f64)?);
    if let Some(t) = opt_u64(a, "link-timeout")? {
        plan = plan.with_link_timeout(t);
    }
    Ok(Some(plan))
}

/// Builds the backend of a `run` invocation through the one
/// [`BackendSpec::builder`] path (cluster knobs apply only to cluster
/// specs; the builder ignores them elsewhere).
fn build_backend(a: &Args) -> Result<Box<dyn ExecBackend>, String> {
    let engine = engine_name(a)?;
    let workers = a.opt("workers", 12usize)?;
    let shards = a.opt("shards", 1usize)?;
    let threads = a.opt("threads", 1usize)?;
    let spec = BackendSpec::parse(&engine)
        .ok_or_else(|| format!("unknown engine {engine}\n{}", usage()))?;
    if shards > 1 && !matches!(spec, BackendSpec::Cluster(_)) {
        return Err("--shards only applies to the cluster backend".into());
    }
    if threads > 1 && !matches!(spec, BackendSpec::Cluster(_)) {
        return Err("--threads only applies to the cluster backend \
                    (other engines have no parallel simulation engine)"
            .into());
    }
    let faults = fault_plan(a)?;
    if faults.is_some() && !matches!(spec, BackendSpec::Cluster(_)) {
        return Err("--fault-seed/--drop-rate/--link-timeout only apply to the \
                    cluster backend (other engines have no interconnect)"
            .into());
    }
    let spec = match spec {
        BackendSpec::Cluster(_) => BackendSpec::Cluster(shards),
        other => other,
    };
    let policy = match a.options.get("policy") {
        Some(p) => {
            Some(ShardPolicy::parse(p).ok_or_else(|| format!("unknown placement policy {p}"))?)
        }
        None => None,
    };
    Ok(spec
        .builder(workers)
        .picos(&picos_config(a)?)
        .link(Some(link_model(a)?))
        .policy(policy)
        .threads(Some(threads))
        .faults(faults)
        .build())
}

/// The `--timeline` sampling window: an explicit cycle count wins;
/// `auto` derives a power-of-two window from the workload's size
/// (sequential time spread over the workers, targeting ~256 samples).
fn timeline_window(a: &Args, trace: &Trace, workers: usize) -> Result<Option<u64>, String> {
    match a.options.get("timeline").map(String::as_str) {
        None => Ok(None),
        Some("auto") => {
            let estimate = trace.sequential_time() / workers.max(1) as u64;
            Ok(Some(span::auto_window(estimate, 256)))
        }
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("invalid value for --timeline: {v} (cycles or `auto`)")),
    }
}

/// An optional `--key <u64>` option.
fn opt_u64(a: &Args, key: &str) -> Result<Option<u64>, String> {
    match a.options.get(key) {
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("invalid value for --{key}: {v}")),
        None => Ok(None),
    }
}

/// Writes the telemetry of a run to the `--metrics-json` / `--metrics-csv`
/// paths, prints a one-line timeline summary, and rejects emit options
/// without an attached timeline.
fn emit_metrics(
    a: &Args,
    engine: &str,
    workers: usize,
    makespan: u64,
    metrics: &MetricSet,
    timeline: Option<&Timeline>,
) -> Result<(), String> {
    let json_path = a.options.get("metrics-json");
    let csv_path = a.options.get("metrics-csv");
    if timeline.is_none() && (json_path.is_some() || csv_path.is_some()) {
        return Err("--metrics-json/--metrics-csv need --timeline <window-cycles>".into());
    }
    let Some(tl) = timeline else { return Ok(()) };
    println!(
        "timeline: {} windows of {} cycles, {} series",
        tl.len(),
        tl.window(),
        tl.series().len()
    );
    if let Some(path) = json_path {
        let json = format!(
            "{{\"engine\":\"{engine}\",\"workers\":{workers},\"makespan\":{makespan},\
             \"metrics\":{},\"timeline\":{}}}\n",
            metrics.to_json(),
            tl.to_json()
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = csv_path {
        std::fs::write(path, tl.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Prints the fault-protocol counters of a run with an active fault plan
/// (a fault-free run registers no `faults.*` metrics and prints nothing).
fn note_faults(metrics: &MetricSet) {
    if let Some(drops) = metrics.value("faults.drops") {
        eprintln!(
            "faults: {} drops, {} retries, {} redeliveries, {} recoveries",
            drops,
            metrics.value("faults.retries").unwrap_or(0),
            metrics.value("faults.redeliveries").unwrap_or(0),
            metrics.value("faults.recoveries").unwrap_or(0)
        );
    }
}

/// Prints the hardware-counter note shared by the batch and paced run
/// modes.
fn note_stats(stats: &Option<Stats>) {
    if let Some(stats) = stats {
        if stats.dm_conflicts > 0 || stats.vm_stalls > 0 {
            eprintln!(
                "note: {} DM conflicts, {} VM stalls",
                stats.dm_conflicts, stats.vm_stalls
            );
        }
    }
}

/// Handles `--critical-path` / `--trace-out` for a finished run's span
/// log — shared by the batch and paced run modes.
fn emit_spans(
    a: &Args,
    trace: &Trace,
    spans: Option<&mut span::SpanLog>,
    makespan: u64,
) -> Result<(), String> {
    let Some(log) = spans else { return Ok(()) };
    // Sessions return spans in recording order; sort here so the
    // exported trace is deterministic across thread counts.
    log.canonical_sort();
    let g = TaskGraph::build(trace);
    if a.options.contains_key("critical-path") {
        let cp = span::critical_path(log, |t| g.preds(TaskId::new(t)).to_vec(), makespan)
            .ok_or("critical path: the span log records no finished task")?;
        print!("{}", cp.table());
    }
    if let Some(path) = a.options.get("trace-out") {
        let mut edges = Vec::with_capacity(g.num_edges());
        for t in 0..trace.len() as u32 {
            for &s in g.succs(TaskId::new(t)) {
                edges.push((t, s));
            }
        }
        std::fs::write(path, span::to_perfetto_json(log, &edges))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}: {} span events", log.len());
    }
    Ok(())
}

fn cmd_run(a: &Args) -> Result<(), String> {
    let trace = load_workload(a, a.pos(0, "trace")?)?;
    let backend = build_backend(a)?;
    if a.options.contains_key("paced") {
        return cmd_run_paced(a, &trace, &*backend);
    }
    if a.options.contains_key("window") {
        return Err("--window only applies to paced runs (add --paced <interarrival>)".into());
    }
    let trace_out = a.options.get("trace-out");
    let want_cp = a.options.contains_key("critical-path");
    let cfg = SessionConfig {
        timeline_window: timeline_window(a, &trace, backend.workers())?,
        trace_spans: trace_out.is_some() || want_cp,
        ..SessionConfig::batch()
    };
    let mut out = backend
        .run_with_telemetry(&trace, cfg)
        .map_err(|e| e.to_string())?;
    note_stats(&out.stats);
    note_faults(&out.metrics);
    out.report.validate(&trace)?;
    println!(
        "{}: makespan {} cycles, speedup {:.2} with {} workers",
        out.report.engine,
        out.report.makespan,
        out.report.speedup(),
        backend.workers()
    );
    emit_spans(a, &trace, out.spans.as_mut(), out.report.makespan)?;
    emit_metrics(
        a,
        &out.report.engine,
        backend.workers(),
        out.report.makespan,
        &out.metrics,
        out.timeline.as_ref(),
    )
}

/// `picos run <workload> --paced <interarrival> [--window <n>]`: feed the
/// workload into a streaming session at an open-loop rate of one task per
/// `interarrival` cycles, with an optional in-flight admission window.
fn cmd_run_paced(a: &Args, trace: &Trace, backend: &dyn ExecBackend) -> Result<(), String> {
    let interarrival = a.opt("paced", 100u64)?;
    let window = match a.options.get("window") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("invalid value for --window: {v}"))?,
        ),
        None => None,
    };
    let source = pace::PacedTrace::new(trace, interarrival);
    let cfg = SessionConfig {
        window,
        timeline_window: timeline_window(a, trace, backend.workers())?,
        trace_spans: a.options.contains_key("trace-out") || a.options.contains_key("critical-path"),
        ..SessionConfig::batch()
    };
    let mut r = pace::run_paced_full(backend, source, cfg).map_err(|e| e.to_string())?;
    note_stats(&r.stats);
    note_faults(&r.metrics);
    r.report.validate(trace)?;
    println!(
        "{}: paced {} tasks @ 1/{} cycles{}: makespan {} cycles",
        r.report.engine,
        r.tasks,
        interarrival,
        window.map_or(String::new(), |w| format!(", window {w}")),
        r.report.makespan,
    );
    println!(
        "offered {:.3} tasks/kcycle, achieved {:.3} tasks/kcycle",
        r.offered_per_kcycle(),
        r.achieved_per_kcycle()
    );
    println!(
        "backpressure: {:.1}% of tasks ({} retries)",
        r.backpressure_ratio() * 100.0,
        r.retries
    );
    emit_spans(a, trace, r.spans.as_mut(), r.report.makespan)?;
    emit_metrics(
        a,
        &r.report.engine,
        r.report.workers,
        r.report.makespan,
        &r.metrics,
        r.timeline.as_ref(),
    )
}

fn cmd_sweep(a: &Args) -> Result<(), String> {
    let arg = a.pos(0, "trace")?;
    let trace = Arc::new(load_workload(a, arg)?);
    let label = trace.name.clone();
    let shards = a.opt("shards", 1usize)?;
    let engines = parse_engines(&engine_name(a)?, shards)?;
    let dm = parse_dm(a.opt("dm", "p8way".to_string())?.as_str())?;
    let ts = parse_ts(a.opt("ts", "fifo".to_string())?.as_str())?;
    let instances = a.opt("instances", 1usize)?;
    let mut sweep = Sweep::new([Workload::from_trace(label, trace)])
        .workers([2usize, 4, 8, 12, 16, 20, 24])
        .backends(engines)
        .dm_designs([dm])
        .instances([instances])
        .ts_policy(ts)
        .interconnect(link_model(a)?)
        // Cluster cells need one worker per shard; prune the infeasible
        // low end of the worker grid instead of reporting error rows.
        .filter(|c| c.workers >= c.shards);
    if let Some(threads) = a.options.get("threads") {
        sweep = sweep.threads(threads.parse().map_err(|_| "invalid --threads")?);
    }
    if let Some(ct) = a.options.get("cluster-threads") {
        sweep = sweep.cluster_threads(ct.parse().map_err(|_| "invalid --cluster-threads")?);
    }
    if let Some(w) = opt_u64(a, "timeline")? {
        sweep = sweep.timeline(w);
    }
    if a.options.contains_key("critical-path") {
        sweep = sweep.critical_path();
    }
    let result = sweep.run();
    println!("engine          workers  speedup  makespan");
    for row in result.rows() {
        match &row.error {
            None => println!(
                "{:<14}  {:>7}  {:>7.2}  {:>9}",
                row.backend, row.workers, row.speedup, row.makespan
            ),
            Some(e) => println!("{:<14}  {:>7}  failed: {e}", row.backend, row.workers),
        }
    }
    if let Some(out) = a.options.get("out") {
        std::fs::write(out, result.to_csv()).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
        if result.rows().iter().any(|r| r.timeline.is_some()) {
            let tl_out = format!("{}.timeline.csv", out.trim_end_matches(".csv"));
            std::fs::write(&tl_out, result.timelines_csv())
                .map_err(|e| format!("writing {tl_out}: {e}"))?;
            eprintln!("wrote {tl_out}");
        }
    }
    match result.first_error() {
        None => Ok(()),
        Some(e) => Err(format!("sweep had failing cells: {e}")),
    }
}

/// Feeds `trace[range]` into a session, declaring the trace's taskwait
/// barriers at their recorded positions and riding out backpressure with
/// forced steps (batch sessions never push back; the loop is for windowed
/// replicas).
fn feed_range(
    s: &mut dyn SessionCore,
    trace: &Trace,
    range: std::ops::Range<usize>,
) -> Result<(), String> {
    for i in range {
        if trace.barriers().contains(&(i as u32)) {
            s.barrier();
        }
        loop {
            match s.submit(&trace.tasks()[i]) {
                Admission::Accepted => break,
                Admission::Backpressured => {
                    if !s.step() {
                        return Err(format!("session stalled feeding task {i}"));
                    }
                }
            }
        }
    }
    Ok(())
}

/// One what-if candidate: a label and the backend that realizes it.
struct WhatIfCandidate {
    label: String,
    backend: Box<dyn ExecBackend>,
}

/// `picos whatif <workload> --axis dm|shards`: config search on a *live*
/// session. The workload's first `--prefix` fraction is fed into a
/// journaled session (the recorded arrival prefix); the live session is
/// then forked in memory for the baseline while one fresh replica per
/// candidate config replays the recorded prefix; every replica receives
/// the remaining suffix and the projected makespans are ranked. The live
/// session itself is never consumed — a server could keep feeding it.
fn cmd_whatif(a: &Args) -> Result<(), String> {
    let trace = load_workload(a, a.pos(0, "trace")?)?;
    if trace.is_empty() {
        return Err("what-if needs a non-empty workload".into());
    }
    let workers = a.opt("workers", 12usize)?;
    let frac = a.opt("prefix", 0.5f64)?;
    if !(0.0..=1.0).contains(&frac) {
        return Err(format!("--prefix must be in 0..=1, got {frac}"));
    }
    let cut = ((trace.len() as f64 * frac) as usize).min(trace.len());
    let axis = a.opt("axis", "dm".to_string())?;
    let base_cfg = picos_config(a)?;
    let link = link_model(a)?;

    // The live config plus the candidate axis, every cell through the
    // same builder path as `picos run`.
    let build = |spec: BackendSpec, cfg: &PicosConfig| {
        spec.builder(workers).picos(cfg).link(Some(link)).build()
    };
    let (live_label, live_backend, candidates) = match axis.as_str() {
        "dm" => {
            let engine = engine_name(a)?;
            let spec = BackendSpec::parse(&engine)
                .ok_or_else(|| format!("unknown engine {engine}\n{}", usage()))?;
            let candidates: Vec<WhatIfCandidate> = DmDesign::ALL
                .into_iter()
                .filter(|d| *d != base_cfg.dm_design)
                .map(|d| {
                    let cfg = PicosConfig {
                        dm_design: d,
                        ..base_cfg.clone()
                    };
                    WhatIfCandidate {
                        label: format!("dm={}", dm_name(d)),
                        backend: build(spec, &cfg),
                    }
                })
                .collect();
            (
                format!("dm={}", dm_name(base_cfg.dm_design)),
                build(spec, &base_cfg),
                candidates,
            )
        }
        "shards" => {
            let base = a.opt("shards", 2usize)?;
            let candidates: Vec<WhatIfCandidate> = [1usize, 2, 4, 8]
                .into_iter()
                .filter(|s| *s != base && *s <= workers)
                .map(|s| WhatIfCandidate {
                    label: format!("shards={s}"),
                    backend: build(BackendSpec::Cluster(s), &base_cfg),
                })
                .collect();
            (
                format!("shards={base}"),
                build(BackendSpec::Cluster(base), &base_cfg),
                candidates,
            )
        }
        other => return Err(format!("unknown what-if axis {other} (want dm or shards)")),
    };

    // The live session: journaled, so replicas can replay its arrivals.
    let session = live_backend
        .open_with(SessionConfig::batch())
        .map_err(|e| e.to_string())?;
    let mut live = JournaledSession::new(session);
    feed_range(&mut live, &trace, 0..cut)?;
    println!(
        "what-if on {}: {} of {} tasks recorded into the live session ({live_label})",
        trace.name,
        cut,
        trace.len()
    );

    // Baseline: fork the live session in memory and run it to the end.
    let mut rows: Vec<(String, u64, f64)> = Vec::new();
    let mut finish = |label: String, mut s: Box<dyn SimSession>| -> Result<(), String> {
        feed_range(&mut *s, &trace, cut..trace.len())?;
        let out = s.finish_full().map_err(|e| format!("{label}: {e}"))?;
        rows.push((label, out.report.makespan, out.report.speedup()));
        Ok(())
    };
    finish(format!("{live_label} (live)"), live.inner().fork_boxed())?;

    // Each candidate replays the recorded prefix into a fresh replica.
    for c in candidates {
        let mut s = c
            .backend
            .open_with(SessionConfig::batch())
            .map_err(|e| e.to_string())?;
        replay_journal(&mut *s, live.journal()).map_err(|e| format!("{}: {e}", c.label))?;
        finish(c.label, s)?;
    }

    let live_makespan = rows[0].1;
    println!("config                 makespan   speedup   vs live");
    for (label, makespan, speedup) in &rows {
        let delta = if *makespan == live_makespan {
            "      —".to_string()
        } else {
            format!(
                "{:>+6.1}%",
                (*makespan as f64 / live_makespan as f64 - 1.0) * 100.0
            )
        };
        println!("{label:<20}  {makespan:>9}  {speedup:>8.2}  {delta}");
    }
    let (best_label, best_makespan, _) = rows
        .iter()
        .min_by_key(|(_, m, _)| *m)
        .expect("at least the baseline row");
    if *best_makespan < live_makespan {
        println!(
            "best: {best_label} — {:.1}% faster than the live config",
            (1.0 - *best_makespan as f64 / live_makespan as f64) * 100.0
        );
    } else {
        println!("best: the live config already wins");
    }
    Ok(())
}

/// `picos serve --addr <host:port>`: run the multi-tenant session service
/// in the foreground until a `shutdown` protocol request arrives, then
/// shut down gracefully (close listener, finish in-flight steps, flush
/// journals).
fn cmd_serve(a: &Args) -> Result<(), String> {
    let d = picos_serve::ServeConfig::default();
    let cfg = picos_serve::ServeConfig {
        default_quota: a.opt("quota", d.default_quota)?,
        step_budget: a.opt("step-budget", d.step_budget)?,
        max_tenants: a.opt("max-tenants", d.max_tenants)?,
        scrape_window: a.opt("scrape-window", d.scrape_window)?,
        journal_dir: a.options.get("journal-dir").map(std::path::PathBuf::from),
        checkpoint_every: match a.options.get("checkpoint-every") {
            Some(v) => Some(v.parse().map_err(|e| format!("--checkpoint-every: {e}"))?),
            None => None,
        },
    };
    let addr = a.opt("addr", "127.0.0.1:9119".to_string())?;
    let listener =
        std::net::TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Announce the resolved address (port 0 binds an ephemeral port) so
    // drivers can connect; flush in case stdout is a pipe.
    println!("picos-serve listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stop = std::sync::atomic::AtomicBool::new(false);
    picos_serve::serve_on(cfg, listener, &stop).map_err(|e| e.to_string())
}

fn cmd_resources(a: &Args) -> Result<(), String> {
    let cfg = picos_config(a)?;
    let est = full_picos_resources(&cfg);
    let (lut, ff, bram) = est.percent_of(XC7Z020);
    println!(
        "full Picos ({}, {} TRS + {} DCT) on XC7Z020:",
        cfg.dm_design, cfg.num_trs, cfg.num_dct
    );
    println!("  LUTs:   {:>6}  ({lut:.1}%)", est.luts);
    println!("  FFs:    {:>6}  ({ff:.1}%)", est.ffs);
    println!("  BRAM36: {:>6}  ({bram:.1}%)", est.bram36);
    Ok(())
}
