//! `picos` — command-line interface for the Picos reproduction.
//!
//! Generate the paper's workloads, run them through any execution engine,
//! sweep worker counts and estimate FPGA resource budgets. Run `picos`
//! without arguments for usage.

mod args;

use args::{usage, Args};
use picos_core::{DmDesign, PicosConfig, TsPolicy};
use picos_hil::{run_hil_with_stats, HilConfig, HilMode};
use picos_resources::{full_picos_resources, XC7Z020};
use picos_runtime::{perfect_schedule, run_software, ExecReport, SwRuntimeConfig};
use picos_trace::{gen, Trace};

fn main() {
    let argv = std::env::args().skip(1);
    match Args::parse(argv).and_then(|a| dispatch(&a)) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn dispatch(a: &Args) -> Result<(), String> {
    match a.command.as_str() {
        "gen" => cmd_gen(a),
        "stats" => cmd_stats(a),
        "run" => cmd_run(a),
        "sweep" => cmd_sweep(a),
        "resources" => cmd_resources(a),
        "apps" => {
            for app in gen::App::ALL {
                println!("{app}  (block sizes: {:?})", app.paper_block_sizes());
            }
            println!("case1..case7  (synthetic testcases)");
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn generate(name: &str, block: u64) -> Result<Trace, String> {
    if let Some(app) = gen::App::ALL.into_iter().find(|x| x.name() == name) {
        return Ok(app.generate(block));
    }
    if let Some(case) = gen::Case::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
    {
        return Ok(gen::synthetic(case));
    }
    Err(format!("unknown app {name}; try `picos apps`"))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Trace::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_gen(a: &Args) -> Result<(), String> {
    let app = a.pos(0, "app")?;
    let block = a.opt("block", 64u64)?;
    let trace = generate(app, block)?;
    let out = a
        .options
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("{app}-{block}.json"));
    let json = trace.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}: {} tasks", trace.len());
    Ok(())
}

fn cmd_stats(a: &Args) -> Result<(), String> {
    let trace = load_trace(a.pos(0, "trace")?)?;
    let s = trace.stats();
    let graph = picos_trace::TaskGraph::build(&trace);
    let p = graph.parallelism();
    println!("name:            {}", s.name);
    println!("tasks:           {}", s.num_tasks);
    println!("deps/task:       {}", s.dep_range());
    println!("avg task size:   {:.3e} cycles", s.avg_task_size);
    println!("sequential:      {:.3e} cycles", s.sequential_time as f64);
    println!("edges:           {}", graph.num_edges());
    println!("critical path:   {:.3e} cycles", p.critical_path as f64);
    println!("avg parallelism: {:.1}", p.avg_parallelism);
    println!("max width:       {}", p.max_width);
    println!("taskwaits:       {}", trace.barriers().len());
    Ok(())
}

fn picos_config(a: &Args) -> Result<PicosConfig, String> {
    let dm = match a.opt("dm", "p8way".to_string())?.as_str() {
        "8way" => DmDesign::EightWay,
        "16way" => DmDesign::SixteenWay,
        "p8way" => DmDesign::PearsonEightWay,
        other => return Err(format!("unknown DM design {other}")),
    };
    let instances = a.opt("instances", 1usize)?;
    let ts = match a.opt("ts", "fifo".to_string())?.as_str() {
        "fifo" => TsPolicy::Fifo,
        "lifo" => TsPolicy::Lifo,
        other => return Err(format!("unknown TS policy {other}")),
    };
    Ok(PicosConfig::future(instances, dm).with_ts_policy(ts))
}

fn run_engine(a: &Args, trace: &Trace, engine: &str, workers: usize) -> Result<ExecReport, String> {
    let mode = match engine {
        "hw-only" => Some(HilMode::HwOnly),
        "hw-comm" => Some(HilMode::HwComm),
        "full" => Some(HilMode::FullSystem),
        _ => None,
    };
    if let Some(mode) = mode {
        let cfg = HilConfig { picos: picos_config(a)?, ..HilConfig::balanced(workers) };
        let (report, stats) = run_hil_with_stats(trace, mode, &cfg).map_err(|e| e.to_string())?;
        if stats.dm_conflicts > 0 || stats.vm_stalls > 0 {
            eprintln!(
                "note: {} DM conflicts, {} VM stalls",
                stats.dm_conflicts, stats.vm_stalls
            );
        }
        return Ok(report);
    }
    match engine {
        "nanos" => run_software(trace, SwRuntimeConfig::with_workers(workers))
            .map_err(|e| e.to_string()),
        "perfect" => Ok(perfect_schedule(trace, workers)),
        other => Err(format!("unknown engine {other}\n{}", usage())),
    }
}

fn cmd_run(a: &Args) -> Result<(), String> {
    let trace = load_trace(a.pos(0, "trace")?)?;
    let engine = a.opt("engine", "full".to_string())?;
    let workers = a.opt("workers", 12usize)?;
    let report = run_engine(a, &trace, &engine, workers)?;
    report.validate(&trace)?;
    println!(
        "{}: makespan {} cycles, speedup {:.2} with {} workers",
        report.engine,
        report.makespan,
        report.speedup(),
        workers
    );
    Ok(())
}

fn cmd_sweep(a: &Args) -> Result<(), String> {
    let trace = load_trace(a.pos(0, "trace")?)?;
    let engine = a.opt("engine", "full".to_string())?;
    println!("workers  speedup");
    for w in [2usize, 4, 8, 12, 16, 20, 24] {
        let report = run_engine(a, &trace, &engine, w)?;
        println!("{w:>7}  {:>7.2}", report.speedup());
    }
    Ok(())
}

fn cmd_resources(a: &Args) -> Result<(), String> {
    let cfg = picos_config(a)?;
    let est = full_picos_resources(&cfg);
    let (lut, ff, bram) = est.percent_of(XC7Z020);
    println!(
        "full Picos ({}, {} TRS + {} DCT) on XC7Z020:",
        cfg.dm_design, cfg.num_trs, cfg.num_dct
    );
    println!("  LUTs:   {:>6}  ({lut:.1}%)", est.luts);
    println!("  FFs:    {:>6}  ({ff:.1}%)", est.ffs);
    println!("  BRAM36: {:>6}  ({bram:.1}%)", est.bram36);
    Ok(())
}
