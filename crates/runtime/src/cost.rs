//! Cost model of the Nanos++ software runtime.
//!
//! The paper's Figure 10 measures the per-task creation and submission
//! overhead of Nanos++ as a function of the number of threads: creation
//! costs thousands of cycles, submission adds thousands more per dependence,
//! and both grow with the thread count (shared runtime structures bounce
//! between caches, allocators and locks contend). This module captures those
//! magnitudes in a linear model the software-runtime simulation charges per
//! operation.
//!
//! Defaults are chosen so the reproduction lands in the paper's regimes:
//! single-task overhead of roughly 10k-30k cycles at 8-12 threads — the
//! scale that makes Nanos++ collapse below block size 64 in Figure 1 while
//! Picos (tens of cycles per task) keeps scaling.

/// Per-operation costs of the software runtime, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NanosCostModel {
    /// Task creation: allocator + descriptor initialisation, base cost.
    pub create_base: u64,
    /// Task creation: additional cost per active thread (allocator and
    /// runtime-structure contention).
    pub create_per_thread: u64,
    /// Dependence submission: address-map lookup/insert, base cost per
    /// dependence.
    pub dep_base: u64,
    /// Dependence submission: additional cost per dependence per active
    /// thread (dependence-module lock contention).
    pub dep_per_thread: u64,
    /// Enqueueing one ready task into the scheduler queue.
    pub enqueue: u64,
    /// Dequeueing a task: scheduler lock + pop, base cost. The lock
    /// serializes all workers.
    pub dequeue_base: u64,
    /// Additional dequeue cost per active thread (lock line ping-pong).
    pub dequeue_per_thread: u64,
    /// Releasing one successor at task completion (decrement + wake-up).
    pub release_per_succ: u64,
}

impl Default for NanosCostModel {
    fn default() -> Self {
        NanosCostModel {
            create_base: 7_000,
            create_per_thread: 150,
            dep_base: 2_600,
            dep_per_thread: 180,
            enqueue: 300,
            dequeue_base: 600,
            dequeue_per_thread: 150,
            release_per_succ: 700,
        }
    }
}

impl NanosCostModel {
    /// Task-creation overhead with `threads` active threads (Figure 10's
    /// "Creation" series).
    pub fn creation(&self, threads: usize) -> u64 {
        self.create_base + self.create_per_thread * threads as u64
    }

    /// Submission overhead of one task with `ndeps` dependences (Figure
    /// 10's "x DEPs" series).
    pub fn submission(&self, ndeps: usize, threads: usize) -> u64 {
        (self.dep_base + self.dep_per_thread * threads as u64) * ndeps as u64
    }

    /// Creation + submission: the full master-side overhead per task.
    pub fn per_task(&self, ndeps: usize, threads: usize) -> u64 {
        self.creation(threads) + self.submission(ndeps, threads)
    }

    /// Scheduler dequeue cost (serialized across workers).
    pub fn dequeue(&self, threads: usize) -> u64 {
        self.dequeue_base + self.dequeue_per_thread * threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_grow_with_threads() {
        let m = NanosCostModel::default();
        assert!(m.creation(12) > m.creation(1));
        assert!(m.submission(4, 12) > m.submission(4, 1));
        assert!(m.dequeue(24) > m.dequeue(2));
    }

    #[test]
    fn submission_scales_with_deps() {
        let m = NanosCostModel::default();
        assert_eq!(m.submission(0, 8), 0);
        assert_eq!(m.submission(4, 8), 4 * m.submission(1, 8));
    }

    #[test]
    fn magnitudes_match_figure10_regime() {
        // Single task with a few dependences at 8-12 threads: 10k-40k
        // cycles of runtime overhead (the regime of the paper's Fig. 10).
        let m = NanosCostModel::default();
        for threads in [8, 12] {
            for ndeps in [1usize, 4, 8] {
                let total = m.per_task(ndeps, threads);
                assert!(
                    (9_000..60_000).contains(&total),
                    "threads {threads} deps {ndeps}: {total}"
                );
            }
        }
    }

    #[test]
    fn per_task_is_create_plus_submit() {
        let m = NanosCostModel::default();
        assert_eq!(m.per_task(3, 6), m.creation(6) + m.submission(3, 6));
    }
}
