//! Software execution engines for the Picos reproduction.
//!
//! Two baselines from the paper's evaluation live here:
//!
//! * [`run_software`] — a discrete-event model of the **Nanos++**
//!   software-only runtime: serial task creation/submission with the
//!   measured overhead magnitudes of the paper's Figure 10, a contended
//!   scheduler lock, and the real dependence-analysis algorithm
//!   ([`SoftwareDeps`]).
//! * [`perfect_schedule`] — the **Perfect Simulator**: zero-overhead list
//!   scheduling, giving the roofline speedup of each application.
//!
//! Both engines are built as incremental streaming sessions
//! ([`SoftwareSession`], [`PerfectSession`]); this crate also hosts the
//! session vocabulary every engine shares ([`SessionCore`], [`Admission`],
//! [`SimEvent`], [`SessionConfig`], [`feed_trace`]) — see the [`session`]
//! module for the timing semantics.
//!
//! # Quick example
//!
//! ```
//! use picos_runtime::{perfect_schedule, run_software, SwRuntimeConfig};
//! use picos_trace::gen;
//!
//! let trace = gen::cholesky(gen::CholeskyConfig::paper(128));
//! let roofline = perfect_schedule(&trace, 12);
//! let nanos = run_software(&trace, SwRuntimeConfig::with_workers(12))?;
//! assert!(roofline.speedup() >= nanos.speedup());
//! # Ok::<(), picos_runtime::SwError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod depmap;
mod journal;
pub mod par;
mod perfect;
mod report;
pub mod session;
mod simrt;
pub mod snap;

pub use cost::NanosCostModel;
pub use depmap::SoftwareDeps;
pub use journal::{replay_journal, replay_journal_tail, JournaledSession};
pub use perfect::{perfect_schedule, PerfectSession};
pub use report::ExecReport;
pub use session::{
    feed_trace, Admission, EventLoopCore, FeedStall, SessionConfig, SessionCore, SimEvent,
};
pub use simrt::{run_software, SoftwareSession, SwError, SwRuntimeConfig};
