//! Shared snapshot codec helpers for the runtime sessions.
//!
//! Task descriptors and [`SimEvent`]s appear in several session snapshots
//! (pending queues, event logs, the master's creation queue), so their
//! positional encodings live here; each session type serializes its own
//! fields next to its definition.

use crate::session::SimEvent;
use picos_trace::snap::{Dec, Enc, SnapError};
use picos_trace::{Dependence, Direction, KernelClass, TaskDescriptor, TaskId};

/// Stable wire code of a dependence direction.
pub fn dir_code(d: Direction) -> u64 {
    match d {
        Direction::In => 0,
        Direction::Out => 1,
        Direction::InOut => 2,
    }
}

/// Inverse of [`dir_code`].
pub fn dir_from(c: u64) -> Result<Direction, SnapError> {
    match c {
        0 => Ok(Direction::In),
        1 => Ok(Direction::Out),
        2 => Ok(Direction::InOut),
        other => Err(SnapError::new(format!("unknown direction code {other}"))),
    }
}

/// Encodes a task descriptor: id, kernel, duration, dependence list.
pub fn enc_task(e: &mut Enc, t: &TaskDescriptor) {
    e.u32(t.id.raw())
        .u64(t.kernel.0 as u64)
        .u64(t.duration)
        .seq(t.deps.iter(), |e, d| {
            e.u64(d.addr).u64(dir_code(d.dir));
        });
}

/// Decodes a task descriptor written by [`enc_task`]. The dependence list
/// was merged at creation time, so it is rebuilt verbatim.
pub fn dec_task(d: &mut Dec) -> Result<TaskDescriptor, SnapError> {
    let id = d.u32()?;
    let kernel = d.u16()?;
    let duration = d.u64()?;
    let deps: Vec<Dependence> = d.seq(|d| Ok(Dependence::new(d.u64()?, dir_from(d.u64()?)?)))?;
    Ok(TaskDescriptor {
        id: TaskId::new(id),
        kernel: KernelClass(kernel),
        deps: deps.into(),
        duration,
    })
}

/// Encodes one schedule event (variant code first).
pub fn enc_event(e: &mut Enc, ev: &SimEvent) {
    match *ev {
        SimEvent::TaskStarted { task, at } => {
            e.u64(0).u32(task).u64(at);
        }
        SimEvent::TaskFinished { task, at } => {
            e.u64(1).u32(task).u64(at);
        }
        SimEvent::ShardMsg { from, to, at } => {
            e.u64(2).u64(from as u64).u64(to as u64).u64(at);
        }
    }
}

/// Decodes one schedule event written by [`enc_event`].
pub fn dec_event(d: &mut Dec) -> Result<SimEvent, SnapError> {
    match d.u64()? {
        0 => Ok(SimEvent::TaskStarted {
            task: d.u32()?,
            at: d.u64()?,
        }),
        1 => Ok(SimEvent::TaskFinished {
            task: d.u32()?,
            at: d.u64()?,
        }),
        2 => Ok(SimEvent::ShardMsg {
            from: d.u16()?,
            to: d.u16()?,
            at: d.u64()?,
        }),
        other => Err(SnapError::new(format!("unknown event code {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_roundtrip() {
        let t = TaskDescriptor::new(
            TaskId::new(7),
            KernelClass(3),
            [Dependence::input(0x1000), Dependence::inout(u64::MAX - 63)],
            12_345,
        );
        let mut e = Enc::new();
        enc_task(&mut e, &t);
        let v = e.done();
        let mut d = Dec::new(&v, "task").unwrap();
        assert_eq!(dec_task(&mut d).unwrap(), t);
    }

    #[test]
    fn event_roundtrip() {
        let evs = [
            SimEvent::TaskStarted { task: 1, at: 2 },
            SimEvent::TaskFinished { task: 3, at: 4 },
            SimEvent::ShardMsg {
                from: 5,
                to: 6,
                at: 7,
            },
        ];
        for ev in evs {
            let mut e = Enc::new();
            enc_event(&mut e, &ev);
            let v = e.done();
            let mut d = Dec::new(&v, "event").unwrap();
            assert_eq!(dec_event(&mut d).unwrap(), ev);
        }
    }

    #[test]
    fn bad_direction_rejected() {
        assert!(dir_from(3).is_err());
    }
}
