//! Software dependence analysis, as the Nanos++ runtime performs it.
//!
//! This is the data structure Picos replaces with hardware: a hash map from
//! dependence address to the last writer and the readers since that write.
//! Task submission walks the map to discover the task's direct predecessors
//! (RAW/WAR/WAW); task completion decrements successor counters and reports
//! the newly ready tasks. The software-runtime simulation charges cycle
//! costs per operation performed here.

use picos_trace::{TaskDescriptor, TaskId};
use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct AddrState {
    last_writer: Option<u32>,
    readers: Vec<u32>,
}

/// Incremental software dependence tracker.
#[derive(Debug, Clone, Default)]
pub struct SoftwareDeps {
    addr: HashMap<u64, AddrState>,
    succs: Vec<Vec<u32>>,
    pred_remaining: Vec<u32>,
    finished: Vec<bool>,
    submitted: Vec<bool>,
    map_ops: u64,
    /// Reusable predecessor list for [`SoftwareDeps::submit`], so the
    /// per-dependence hot path performs no heap allocation.
    preds_scratch: Vec<u32>,
}

impl SoftwareDeps {
    /// Creates an empty tracker with capacity for `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        SoftwareDeps {
            addr: HashMap::new(),
            succs: vec![Vec::new(); num_tasks],
            pred_remaining: vec![0; num_tasks],
            finished: vec![false; num_tasks],
            submitted: vec![false; num_tasks],
            map_ops: 0,
            preds_scratch: Vec::new(),
        }
    }

    /// Number of address-map operations performed so far (cost accounting).
    pub fn map_ops(&self) -> u64 {
        self.map_ops
    }

    /// Registers a task's dependences; returns `true` when the task is
    /// ready to run immediately (no unfinished predecessor).
    ///
    /// Must be called in creation order, as the runtime does. The tracker
    /// grows on demand, so streaming sessions need not know the final task
    /// count up front.
    pub fn submit(&mut self, task: &TaskDescriptor) -> bool {
        let me = task.id.raw();
        if me as usize >= self.succs.len() {
            let n = me as usize + 1;
            self.succs.resize_with(n, Vec::new);
            self.pred_remaining.resize(n, 0);
            self.finished.resize(n, false);
            self.submitted.resize(n, false);
        }
        debug_assert!(!self.submitted[me as usize], "double submit of {me}");
        self.submitted[me as usize] = true;
        let mut preds = std::mem::take(&mut self.preds_scratch);
        for dep in task.deps.iter() {
            self.map_ops += 1;
            preds.clear();
            let st = self.addr.entry(dep.addr).or_default();
            if dep.dir.reads() {
                if let Some(w) = st.last_writer {
                    preds.push(w);
                }
            }
            if dep.dir.writes() {
                if let Some(w) = st.last_writer {
                    preds.push(w);
                }
                preds.extend(st.readers.iter().copied());
                st.last_writer = Some(me);
                st.readers.clear();
            }
            if dep.dir.reads() && !dep.dir.writes() {
                st.readers.push(me);
            }
            for &p in &preds {
                if p != me && !self.finished[p as usize] && !self.succs[p as usize].contains(&me) {
                    self.succs[p as usize].push(me);
                    self.pred_remaining[me as usize] += 1;
                }
            }
        }
        self.preds_scratch = preds;
        self.pred_remaining[me as usize] == 0
    }

    /// Marks a task finished; appends the tasks that became ready to
    /// `ready` (the allocation-free form of [`SoftwareDeps::finish`]).
    pub fn finish_into(&mut self, task: TaskId, ready: &mut Vec<TaskId>) {
        let me = task.index();
        debug_assert!(self.submitted[me], "finish before submit");
        debug_assert!(!self.finished[me], "double finish");
        self.finished[me] = true;
        for i in 0..self.succs[me].len() {
            let s = self.succs[me][i];
            self.map_ops += 1;
            self.pred_remaining[s as usize] -= 1;
            if self.pred_remaining[s as usize] == 0 {
                ready.push(TaskId::new(s));
            }
        }
    }

    /// Marks a task finished; returns the tasks that became ready.
    pub fn finish(&mut self, task: TaskId) -> Vec<TaskId> {
        let mut ready = Vec::new();
        self.finish_into(task, &mut ready);
        ready
    }

    /// Successors discovered for a task so far.
    pub fn successors(&self, task: TaskId) -> &[u32] {
        &self.succs[task.index()]
    }

    /// Unfinished-predecessor count of a submitted task.
    pub fn pending_preds(&self, task: TaskId) -> u32 {
        self.pred_remaining[task.index()]
    }

    /// Serializes the tracker. The address map is emitted in ascending
    /// address order so the encoding is deterministic; reader lists keep
    /// their arrival order (it feeds successor discovery order).
    pub fn save_state(&self) -> picos_trace::Value {
        use picos_trace::snap::Enc;
        let mut addrs: Vec<(&u64, &AddrState)> = self.addr.iter().collect();
        addrs.sort_unstable_by_key(|(a, _)| **a);
        let mut e = Enc::new();
        e.seq(addrs, |e, (a, st)| {
            e.u64(*a)
                .opt_u64(st.last_writer.map(u64::from))
                .u32s(st.readers.iter().copied());
        })
        .seq(self.succs.iter(), |e, s| {
            e.u32s(s.iter().copied());
        })
        .u32s(self.pred_remaining.iter().copied())
        .bools(self.finished.iter().copied())
        .bools(self.submitted.iter().copied())
        .u64(self.map_ops);
        e.done()
    }

    /// Overwrites the tracker from [`SoftwareDeps::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`picos_trace::SnapError`] on a malformed record.
    pub fn load_state(&mut self, v: &picos_trace::Value) -> Result<(), picos_trace::SnapError> {
        use picos_trace::snap::Dec;
        let mut d = Dec::new(v, "software deps")?;
        let addrs = d.seq(|d| {
            Ok((
                d.u64()?,
                AddrState {
                    last_writer: d.opt_u64()?.map(|w| w as u32),
                    readers: d.u32s()?,
                },
            ))
        })?;
        let succs = d.seq(|d| d.u32s())?;
        let pred_remaining = d.u32s()?;
        let finished = d.bools()?;
        let submitted = d.bools()?;
        let map_ops = d.u64()?;
        let n = succs.len();
        if pred_remaining.len() != n || finished.len() != n || submitted.len() != n {
            return Err(picos_trace::SnapError::new(
                "software deps: per-task table length mismatch",
            ));
        }
        self.addr = addrs.into_iter().collect();
        self.succs = succs;
        self.pred_remaining = pred_remaining;
        self.finished = finished;
        self.submitted = submitted;
        self.map_ops = map_ops;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::{gen, Dependence, KernelClass, TaskGraph, Trace};

    fn k() -> KernelClass {
        KernelClass::GENERIC
    }

    #[test]
    fn chain_readiness() {
        let mut tr = Trace::new("t");
        for _ in 0..3 {
            tr.push(k(), [Dependence::inout(0xA)], 1);
        }
        let mut sw = SoftwareDeps::new(3);
        assert!(sw.submit(&tr.tasks()[0]));
        assert!(!sw.submit(&tr.tasks()[1]));
        assert!(!sw.submit(&tr.tasks()[2]));
        assert_eq!(sw.finish(TaskId::new(0)), vec![TaskId::new(1)]);
        assert_eq!(sw.finish(TaskId::new(1)), vec![TaskId::new(2)]);
        assert_eq!(sw.finish(TaskId::new(2)), vec![]);
    }

    #[test]
    fn finished_predecessors_do_not_block() {
        let mut tr = Trace::new("t");
        tr.push(k(), [Dependence::output(0xA)], 1);
        tr.push(k(), [Dependence::input(0xA)], 1);
        let mut sw = SoftwareDeps::new(2);
        assert!(sw.submit(&tr.tasks()[0]));
        sw.finish(TaskId::new(0));
        // Reader submitted after the writer finished: ready at once.
        assert!(sw.submit(&tr.tasks()[1]));
    }

    #[test]
    fn matches_task_graph_when_all_submitted_first() {
        // When every task is submitted before any finishes, the discovered
        // predecessor counts must equal the ground-truth graph's.
        for seed in 0..5 {
            let tr = gen::random_trace(
                gen::RandomConfig {
                    tasks: 120,
                    addr_pool: 12,
                    write_fraction: 0.5,
                    ..gen::RandomConfig::default()
                },
                seed,
            );
            let g = TaskGraph::build(&tr);
            let mut sw = SoftwareDeps::new(tr.len());
            for t in tr.iter() {
                sw.submit(t);
            }
            for t in tr.iter() {
                assert_eq!(
                    sw.pending_preds(t.id) as usize,
                    g.preds(t.id).len(),
                    "seed {seed} task {}",
                    t.id
                );
                let mut a = sw.successors(t.id).to_vec();
                let mut b = g.succs(t.id).to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "seed {seed} task {} successors", t.id);
            }
        }
    }

    #[test]
    fn war_edge_blocks_writer() {
        let mut tr = Trace::new("t");
        tr.push(k(), [Dependence::input(0xB)], 1);
        tr.push(k(), [Dependence::output(0xB)], 1);
        let mut sw = SoftwareDeps::new(2);
        assert!(
            sw.submit(&tr.tasks()[0]),
            "reader of untouched data is ready"
        );
        assert!(!sw.submit(&tr.tasks()[1]), "writer waits for reader (WAR)");
        assert_eq!(sw.finish(TaskId::new(0)), vec![TaskId::new(1)]);
    }

    #[test]
    fn map_ops_counted() {
        let mut tr = Trace::new("t");
        tr.push(k(), [Dependence::input(1), Dependence::input(2)], 1);
        let mut sw = SoftwareDeps::new(1);
        sw.submit(&tr.tasks()[0]);
        assert_eq!(sw.map_ops(), 2);
    }
}
