//! The streaming-session vocabulary shared by every execution engine.
//!
//! The paper's Picos is an *online* device: the runtime pushes tasks as it
//! discovers them and the accelerator accepts or stalls them under finite
//! capacity. Every engine of the reproduction therefore exposes an
//! incremental **session** — a resumable simulation that ingests tasks one
//! at a time ([`SessionCore::submit`]), honours `taskwait` barriers
//! ([`SessionCore::barrier`]), advances simulated time on demand
//! ([`SessionCore::advance_to`] / [`SessionCore::step`]) and reports
//! schedule activity as [`SimEvent`]s. The batch `run(&Trace)` entry points
//! are thin drivers over sessions ([`feed_trace`]).
//!
//! # Timing semantics
//!
//! A submitted task *arrives* at the session's current time. While the
//! session is **open** (more submissions may come) and able to ingest,
//! [`SessionCore::step`] refuses to move the clock — the model never runs
//! ahead of an open input stream, which is what makes a session driven
//! task-by-task (in any submit/step interleaving) bit-exact with the batch
//! run. Moving time forward is always an explicit client assertion:
//! [`SessionCore::advance_to`] means "no input arrives before this cycle"
//! (the open-loop arrival primitive used by the paced driver), and
//! `step` advances only when the session is ingest-blocked — its in-flight
//! window is full or its next task waits behind a taskwait — or closed.

use crate::report::ExecReport;
use picos_trace::snap::{Dec, Enc};
use picos_trace::{SnapError, TaskDescriptor, Trace, Value};
use std::collections::VecDeque;
use std::fmt;

/// Outcome of submitting a task to a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The task was admitted and will be created as early as the engine's
    /// timing model allows.
    Accepted,
    /// The session's in-flight window is saturated (the analogue of the
    /// paper's full-TRS stall reaching the submitting runtime). The task
    /// was **not** admitted; retry after draining with
    /// [`SessionCore::step`] or [`SessionCore::advance_to`].
    Backpressured,
}

/// Schedule activity drained from a session via
/// [`SessionCore::drain_events`] (collected only when
/// [`SessionConfig::collect_events`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A task started executing on a worker.
    TaskStarted {
        /// Dense task id (submission order).
        task: u32,
        /// Start cycle.
        at: u64,
    },
    /// A task finished executing.
    TaskFinished {
        /// Dense task id (submission order).
        task: u32,
        /// Completion cycle.
        at: u64,
    },
    /// A message crossed the inter-shard interconnect (cluster sessions
    /// only): a dependence-registration fragment, wake-up or finish notice.
    ShardMsg {
        /// Sending shard.
        from: u16,
        /// Receiving shard.
        to: u16,
        /// Cycle the message entered the link.
        at: u64,
    },
}

/// Per-session knobs, chosen when the session is opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionConfig {
    /// Maximum tasks in flight (admitted but not finished) before
    /// [`SessionCore::submit`] returns [`Admission::Backpressured`].
    /// `None` (the default) admits unboundedly, which is the batch-run
    /// semantics: the trace is fully known, so nothing limits pre-loading.
    pub window: Option<usize>,
    /// Whether to record [`SimEvent`]s. Off by default: the batch driver
    /// never drains them, so collecting would grow an unread queue.
    pub collect_events: bool,
    /// Cycle width of the telemetry sampling windows. `None` (the
    /// default) attaches no sampler: probe points stay plain field
    /// increments and the run produces no
    /// [`Timeline`](picos_metrics::Timeline). Attaching one is
    /// observation-only — it changes no cycle of the schedule.
    pub timeline_window: Option<u64>,
    /// Whether to record task-lifecycle span events
    /// ([`picos_metrics::span::SpanLog`]). Off by default; attaching the
    /// recorder is observation-only — engines pay one branch per event
    /// site and no cycle of the schedule changes.
    pub trace_spans: bool,
}

impl SessionConfig {
    /// Batch-equivalent defaults: unbounded window, no event collection,
    /// no telemetry sampler.
    pub fn batch() -> Self {
        SessionConfig::default()
    }

    /// A paced/open-loop configuration: bounded in-flight window with
    /// event collection off.
    pub fn windowed(window: usize) -> Self {
        SessionConfig {
            window: Some(window),
            ..SessionConfig::default()
        }
    }

    /// Batch defaults plus a cycle-windowed telemetry sampler.
    pub fn timed(timeline_window: u64) -> Self {
        SessionConfig {
            timeline_window: Some(timeline_window),
            ..SessionConfig::default()
        }
    }

    /// Sets the telemetry sampling window.
    pub fn with_timeline(mut self, timeline_window: u64) -> Self {
        self.timeline_window = Some(timeline_window);
        self
    }

    /// Enables task-lifecycle span tracing.
    pub fn with_spans(mut self) -> Self {
        self.trace_spans = true;
        self
    }

    /// Rejects a zero-cycle telemetry window.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for a backend configuration error.
    pub fn validate(&self) -> Result<(), String> {
        if self.timeline_window == Some(0) {
            return Err("telemetry timeline window must be at least one cycle".into());
        }
        Ok(())
    }
}

/// The incremental-ingest interface every engine's concrete session
/// implements. The `picos_backend` crate's `SimSession` trait extends this
/// with a uniform `finish` and wraps the result types.
///
/// Task ids are dense submission indices: the `i`-th accepted task has id
/// `i` (matching [`TaskDescriptor::id`] when a whole trace is fed in
/// creation order). Sessions read the descriptor's dependences and
/// duration; its `id` field is ignored.
pub trait SessionCore {
    /// Offers a task to the session. On [`Admission::Accepted`] the task
    /// arrives at the current cycle and is created as early as the
    /// engine's own timing model allows; on [`Admission::Backpressured`]
    /// nothing was recorded and the caller must retry.
    fn submit(&mut self, task: &TaskDescriptor) -> Admission;

    /// Declares an OmpSs `taskwait`: every task submitted after this call
    /// is created only once all previously submitted tasks have finished.
    fn barrier(&mut self);

    /// Advances simulated time to `cycle`, asserting that no submission
    /// arrives earlier. Processes every internal event on the way; a
    /// `cycle` at or before the current time only settles current-time
    /// work.
    fn advance_to(&mut self, cycle: u64);

    /// Makes minimal safe progress: settles current-time work, and — only
    /// when the session is ingest-blocked (window full, or the next task
    /// gated behind a taskwait) or closed to input — advances to the next
    /// internal event. Returns `false` when nothing was done because the
    /// session is idle and waiting for input (or fully drained).
    fn step(&mut self) -> bool;

    /// Current simulated time.
    fn now(&self) -> u64;

    /// Tasks admitted but not yet finished.
    fn in_flight(&self) -> usize;

    /// Moves every recorded [`SimEvent`] into `out`, in emission order.
    /// Emission order is simulation-processing order, not timestamp
    /// order: a start is stamped with its dispatch-delayed cycle, so an
    /// event with a smaller `at` may follow one with a larger `at` within
    /// a dispatch window — sort by `at` if a strict timeline is needed.
    fn drain_events(&mut self, out: &mut Vec<SimEvent>);

    /// Hints that roughly `additional` more tasks will be submitted, so
    /// the session can pre-size its per-task state. Purely an
    /// optimization; the default does nothing.
    fn reserve(&mut self, additional: usize) {
        let _ = additional;
    }
}

/// Boxed sessions forward the whole ingest interface, so drivers that are
/// generic over `S: SessionCore` (the journaling wrapper, the feed loops)
/// work directly on `Box<dyn SimSession>`-shaped trait objects.
impl<S: SessionCore + ?Sized> SessionCore for Box<S> {
    fn submit(&mut self, task: &TaskDescriptor) -> Admission {
        (**self).submit(task)
    }

    fn barrier(&mut self) {
        (**self).barrier()
    }

    fn advance_to(&mut self, cycle: u64) {
        (**self).advance_to(cycle)
    }

    fn step(&mut self) -> bool {
        (**self).step()
    }

    fn now(&self) -> u64 {
        (**self).now()
    }

    fn in_flight(&self) -> usize {
        (**self).in_flight()
    }

    fn drain_events(&mut self, out: &mut Vec<SimEvent>) {
        (**self).drain_events(out)
    }

    fn reserve(&mut self, additional: usize) {
        (**self).reserve(additional)
    }
}

/// The driver shape shared by the event-loop sessions (HIL platform,
/// cluster): a batch-loop body run at the current time ([`pump`]) plus
/// the earliest pending internal event ([`next_time`]).
///
/// The provided methods implement the [`SessionCore`] clock contract in
/// one place — `advance_to`'s "no input before this cycle" drive,
/// `step`'s blocked-only minimal advance, and the run-to-quiescence
/// finish — so the bit-exactness invariant cannot drift between engines.
///
/// [`pump`]: EventLoopCore::pump
/// [`next_time`]: EventLoopCore::next_time
pub trait EventLoopCore {
    /// Runs the loop body of the batch driver at the current time
    /// (completions, deliveries, feeding, dispatch). Must be idempotent
    /// at a fixed time.
    fn pump(&mut self);

    /// Time of the next internal event, if any.
    fn next_time(&self) -> Option<u64>;

    /// Current simulated time.
    fn clock(&self) -> u64;

    /// Moves the clock to `t` (monotone).
    fn set_clock(&mut self, t: u64);

    /// Called after the clock jumps past the last pending event (an
    /// `advance_to` beyond quiescence): bring the engine cores current at
    /// the new time.
    fn on_clock_jump(&mut self) {}

    /// Whether the next submission cannot be ingested right now (window
    /// saturated or the next task gated behind a taskwait).
    fn ingest_blocked(&self) -> bool;

    /// The `advance_to` drive: process every event up to `cycle`, then
    /// place the clock exactly there.
    fn drive_to(&mut self, cycle: u64) {
        loop {
            self.pump();
            match self.next_time() {
                Some(tn) if tn <= cycle => self.set_clock(tn),
                _ => break,
            }
        }
        if cycle > self.clock() {
            self.set_clock(cycle);
            self.on_clock_jump();
        }
    }

    /// The `step` drive: settle current-time work, and advance to the
    /// next event only when ingest-blocked. Returns whether progress was
    /// made.
    fn drive_step(&mut self) -> bool {
        let was_blocked = self.ingest_blocked();
        self.pump();
        if !self.ingest_blocked() {
            // Settling current-time work is progress in itself when it
            // unblocked ingestion (a completion at the current cycle can
            // free the window): the caller must retry its submission
            // rather than read `false` as a terminal stall.
            return was_blocked;
        }
        match self.next_time() {
            Some(tn) => {
                self.set_clock(tn);
                self.pump();
                true
            }
            None => false,
        }
    }

    /// The `finish` drive: run every remaining event to quiescence.
    fn drive_finish(&mut self) {
        loop {
            self.pump();
            match self.next_time() {
                Some(tn) => self.set_clock(tn),
                None => break,
            }
        }
    }
}

/// The feed loop could not make progress: a submission stayed
/// backpressured while [`SessionCore::step`] reported no possible
/// progress. With the default unbounded window this cannot happen; it
/// indicates a window too small for the workload's barrier structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedStall {
    /// Index of the task whose submission stalled.
    pub task: u32,
}

impl fmt::Display for FeedStall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "session backpressured with no draining progress at task {}",
            self.task
        )
    }
}

impl std::error::Error for FeedStall {}

/// Feeds a whole trace into a session in creation order, declaring its
/// taskwait barriers and draining backpressure with [`SessionCore::step`].
/// This is the batch half of every `run(&Trace)` entry point; the caller
/// finishes the session afterwards to obtain the report.
///
/// # Errors
///
/// Returns [`FeedStall`] if a submission stays backpressured while the
/// session cannot progress (impossible with the default unbounded window).
pub fn feed_trace<S: SessionCore + ?Sized>(
    session: &mut S,
    trace: &Trace,
) -> Result<(), FeedStall> {
    session.reserve(trace.len());
    let mut barriers = trace.barriers().iter().peekable();
    for (i, task) in trace.iter().enumerate() {
        while barriers.peek() == Some(&&(i as u32)) {
            session.barrier();
            barriers.next();
        }
        loop {
            match session.submit(task) {
                Admission::Accepted => break,
                Admission::Backpressured => {
                    if !session.step() {
                        return Err(FeedStall { task: i as u32 });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Shared ingest bookkeeping for the concrete sessions: dense id
/// assignment, arrival stamping, per-task taskwait gates and the
/// in-flight window.
///
/// A task's *gate* is the number of previously submitted tasks that must
/// have finished before the engine may create it — exactly
/// `Trace::creation_limit` expressed per task: `feedable(i, done)` iff
/// `gates[i] <= done`.
#[derive(Debug, Clone, Default)]
pub struct Ingest {
    /// Taskwait gate of each admitted task.
    pub gates: Vec<u32>,
    /// Gate applied to the next submission.
    cur_gate: u32,
    /// Tasks admitted so far (the next task's dense id).
    pub admitted: usize,
    /// Tasks finished so far.
    pub finished: usize,
    /// In-flight window, from [`SessionConfig::window`].
    window: Option<usize>,
}

impl Ingest {
    /// Empty ingest state with the given in-flight window.
    pub fn new(window: Option<usize>) -> Self {
        Ingest {
            window,
            ..Ingest::default()
        }
    }

    /// Pre-sizes the per-task arrays for `additional` more admissions.
    pub fn reserve(&mut self, additional: usize) {
        self.gates.reserve(additional);
    }

    /// Whether a submission right now would be backpressured.
    pub fn saturated(&self) -> bool {
        self.window
            .is_some_and(|w| self.admitted - self.finished >= w)
    }

    /// Admits one task; returns its dense id. (Arrival stamping is left
    /// to the engines that consult it — only the software model does.)
    pub fn admit(&mut self) -> u32 {
        let id = self.admitted as u32;
        self.gates.push(self.cur_gate);
        self.admitted += 1;
        id
    }

    /// Declares a taskwait: subsequent tasks wait for everything admitted
    /// so far.
    pub fn barrier(&mut self) {
        self.cur_gate = self.admitted as u32;
    }

    /// Whether admitted task `i` may be created once `done` tasks have
    /// finished.
    pub fn feedable(&self, i: usize, done: usize) -> bool {
        i < self.admitted && self.gates[i] as usize <= done
    }

    /// Tasks admitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.admitted - self.finished
    }

    /// Serializes the ingest state (window included, as a restore guard).
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.opt_u64(self.window.map(|w| w as u64))
            .u32s(self.gates.iter().copied())
            .u32(self.cur_gate)
            .usize(self.admitted)
            .usize(self.finished);
        e.done()
    }

    /// Overwrites the ingest state from [`Ingest::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or when the snapshot
    /// was taken under a different in-flight window.
    pub fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        let mut d = Dec::new(v, "ingest")?;
        let window = d.opt_u64()?.map(|w| w as usize);
        if window != self.window {
            return Err(SnapError::new(format!(
                "ingest: window mismatch (snapshot {window:?}, session {:?})",
                self.window
            )));
        }
        self.gates = d.u32s()?;
        self.cur_gate = d.u32()?;
        self.admitted = d.usize()?;
        self.finished = d.usize()?;
        Ok(())
    }
}

/// Shared event recorder: a no-op unless the session was opened with
/// [`SessionConfig::collect_events`].
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    enabled: bool,
    q: VecDeque<SimEvent>,
}

impl EventLog {
    /// An event recorder; a disabled one drops every push.
    pub fn new(enabled: bool) -> Self {
        EventLog {
            enabled,
            q: VecDeque::new(),
        }
    }

    /// Whether pushes are recorded (callers batching events elsewhere can
    /// skip the bookkeeping entirely when recording is off).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn push(&mut self, ev: SimEvent) {
        if self.enabled {
            self.q.push_back(ev);
        }
    }

    /// Moves every recorded event into `out`, oldest first.
    pub fn drain_into(&mut self, out: &mut Vec<SimEvent>) {
        out.extend(self.q.drain(..));
    }

    /// Serializes the recorder: the enabled flag (a restore guard) and the
    /// undrained queue.
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.bool(self.enabled)
            .seq(self.q.iter(), crate::snap::enc_event);
        e.done()
    }

    /// Overwrites the recorder from [`EventLog::save_state`] output.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record or an enabled-flag
    /// mismatch.
    pub fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        let mut d = Dec::new(v, "event log")?;
        picos_trace::snap::guard("event log enabled", d.bool()? as u64, self.enabled as u64)?;
        self.q = d.seq(crate::snap::dec_event)?.into();
        Ok(())
    }
}

/// Growable per-task schedule log shared by the sessions; finalizes into
/// an [`ExecReport`].
#[derive(Debug, Clone, Default)]
pub struct ScheduleLog {
    /// Per-task start cycles, indexed by dense id.
    pub start: Vec<u64>,
    /// Per-task end cycles, indexed by dense id.
    pub end: Vec<u64>,
    /// Task ids in execution (start) order.
    pub order: Vec<u32>,
    /// Sum of admitted task durations (the report's sequential baseline).
    pub sequential: u64,
}

impl ScheduleLog {
    /// Pre-sizes the per-task arrays for `additional` more admissions.
    pub fn reserve(&mut self, additional: usize) {
        self.start.reserve(additional);
        self.end.reserve(additional);
        self.order.reserve(additional);
    }

    /// Extends the per-task arrays for one admitted task of `duration`.
    pub fn admit(&mut self, duration: u64) {
        self.start.push(0);
        self.end.push(0);
        self.sequential += duration;
    }

    /// Records a task starting at `at` for `dur` cycles; returns its end.
    pub fn begin(&mut self, task: u32, at: u64, dur: u64) -> u64 {
        self.start[task as usize] = at;
        self.end[task as usize] = at + dur;
        self.order.push(task);
        at + dur
    }

    /// Re-records a task whose earlier execution was abandoned (fail-stop
    /// fault recovery): replaces its start/end and moves its entry to the
    /// back of the execution order — the re-execution is the one that
    /// really ran, and a restart is always the task's latest start, so the
    /// order stays topological. Returns the new end.
    pub fn rebegin(&mut self, task: u32, at: u64, dur: u64) -> u64 {
        self.start[task as usize] = at;
        self.end[task as usize] = at + dur;
        self.order.retain(|&x| x != task);
        self.order.push(task);
        at + dur
    }

    /// Serializes the schedule log.
    pub fn save_state(&self) -> Value {
        let mut e = Enc::new();
        e.u64s(self.start.iter().copied())
            .u64s(self.end.iter().copied())
            .u32s(self.order.iter().copied())
            .u64(self.sequential);
        e.done()
    }

    /// Overwrites the schedule log from [`ScheduleLog::save_state`]
    /// output.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a malformed record.
    pub fn load_state(&mut self, v: &Value) -> Result<(), SnapError> {
        let mut d = Dec::new(v, "schedule log")?;
        let start = d.u64s()?;
        let end = d.u64s()?;
        if start.len() != end.len() {
            return Err(SnapError::new("schedule log: start/end length mismatch"));
        }
        self.start = start;
        self.end = end;
        self.order = d.u32s()?;
        self.sequential = d.u64()?;
        Ok(())
    }

    /// Finalizes the log into an [`ExecReport`] under an engine label.
    pub fn into_report(self, engine: &str, workers: usize) -> ExecReport {
        ExecReport {
            engine: engine.into(),
            workers,
            makespan: self.end.iter().copied().max().unwrap_or(0),
            sequential: self.sequential,
            order: self.order,
            start: self.start,
            end: self.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::{Dependence, KernelClass};

    #[test]
    fn ingest_gates_follow_barriers() {
        let mut ing = Ingest::new(None);
        ing.admit();
        ing.admit();
        ing.barrier();
        ing.admit();
        assert_eq!(ing.gates, vec![0, 0, 2]);
        assert!(ing.feedable(0, 0));
        assert!(!ing.feedable(2, 1));
        assert!(ing.feedable(2, 2));
        assert!(!ing.feedable(3, 2), "not yet admitted");
    }

    #[test]
    fn ingest_window_saturates() {
        let mut ing = Ingest::new(Some(2));
        assert!(!ing.saturated());
        ing.admit();
        ing.admit();
        assert!(ing.saturated());
        ing.finished += 1;
        assert!(!ing.saturated());
        assert_eq!(ing.in_flight(), 1);
    }

    #[test]
    fn feed_trace_declares_barriers_in_order() {
        /// Recording stub: logs submits and barriers.
        #[derive(Default)]
        struct Rec {
            log: Vec<String>,
        }
        impl SessionCore for Rec {
            fn submit(&mut self, task: &TaskDescriptor) -> Admission {
                self.log.push(format!("t{}", task.id.raw()));
                Admission::Accepted
            }
            fn barrier(&mut self) {
                self.log.push("|".into());
            }
            fn advance_to(&mut self, _: u64) {}
            fn step(&mut self) -> bool {
                false
            }
            fn now(&self) -> u64 {
                0
            }
            fn in_flight(&self) -> usize {
                0
            }
            fn drain_events(&mut self, _: &mut Vec<SimEvent>) {}
        }
        let mut tr = Trace::new("t");
        tr.push(KernelClass::GENERIC, [Dependence::inout(1)], 1);
        tr.push_taskwait();
        tr.push(KernelClass::GENERIC, [], 1);
        let mut rec = Rec::default();
        feed_trace(&mut rec, &tr).unwrap();
        assert_eq!(rec.log, vec!["t0", "|", "t1"]);
    }

    #[test]
    fn events_disabled_by_default() {
        let mut log = EventLog::new(false);
        log.push(SimEvent::TaskStarted { task: 0, at: 0 });
        let mut out = Vec::new();
        log.drain_into(&mut out);
        assert!(out.is_empty());
        let mut log = EventLog::new(true);
        log.push(SimEvent::TaskFinished { task: 1, at: 5 });
        log.drain_into(&mut out);
        assert_eq!(out, vec![SimEvent::TaskFinished { task: 1, at: 5 }]);
    }
}
