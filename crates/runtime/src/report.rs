//! Execution reports shared by all execution engines.

use picos_metrics::SyntheticMetrics;
use picos_trace::{TaskGraph, Trace};

/// The outcome of running a trace on some engine with a worker count.
///
/// All speedups in the reproduction are computed exactly as in the paper:
/// against the sequential execution time of the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Engine label (e.g. `"perfect"`, `"nanos"`, `"picos-full"`).
    pub engine: String,
    /// Number of workers used.
    pub workers: usize,
    /// Total simulated time from first submission to last completion.
    pub makespan: u64,
    /// Sequential execution time of the trace.
    pub sequential: u64,
    /// Task indices in execution (start-time) order.
    pub order: Vec<u32>,
    /// Per-task start times, indexed by task id.
    pub start: Vec<u64>,
    /// Per-task end times, indexed by task id.
    pub end: Vec<u64>,
}

impl ExecReport {
    /// Speedup against the sequential execution (paper's y-axes).
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.sequential as f64 / self.makespan as f64
        }
    }

    /// The paper's Table IV processing-capacity metrics (first-task
    /// latency, per-task and per-dependence throughput), extracted from
    /// this schedule. Works on the report of *any* backend — the
    /// extraction needs only start cycles plus the workload's average
    /// dependence count (`trace.stats().avg_deps()`).
    ///
    /// # Panics
    ///
    /// Panics on an empty report.
    pub fn synthetic_metrics(&self, avg_deps: f64) -> SyntheticMetrics {
        picos_metrics::synthetic_metrics(&self.start, avg_deps)
    }

    /// Checks the schedule against the ground-truth dataflow graph: every
    /// edge must satisfy `end(pred) <= start(succ)`, and the execution
    /// order must be a topological order.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, trace: &Trace) -> Result<(), String> {
        let graph = TaskGraph::build(trace);
        if self.order.len() != trace.len() {
            return Err(format!(
                "executed {} of {} tasks",
                self.order.len(),
                trace.len()
            ));
        }
        if !graph.is_topological(&self.order) {
            return Err("execution order is not a topological order".into());
        }
        for t in 0..trace.len() {
            for &p in graph.preds(picos_trace::TaskId::new(t as u32)) {
                if self.end[p as usize] > self.start[t] {
                    return Err(format!(
                        "task {t} started at {} before predecessor {p} ended at {}",
                        self.start[t], self.end[p as usize]
                    ));
                }
            }
        }
        for &b in graph.barriers() {
            let b = b as usize;
            let before_end = self.end[..b].iter().copied().max().unwrap_or(0);
            let after_start = self.start[b..].iter().copied().min().unwrap_or(u64::MAX);
            if before_end > after_start {
                return Err(format!(
                    "taskwait at {b} violated: a later task started at {after_start} \
                     before an earlier one ended at {before_end}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::{Dependence, KernelClass};

    fn chain2() -> Trace {
        let mut tr = Trace::new("t");
        tr.push(KernelClass::GENERIC, [Dependence::inout(1)], 10);
        tr.push(KernelClass::GENERIC, [Dependence::inout(1)], 10);
        tr
    }

    #[test]
    fn speedup_computation() {
        let r = ExecReport {
            engine: "x".into(),
            workers: 2,
            makespan: 50,
            sequential: 100,
            order: vec![],
            start: vec![],
            end: vec![],
        };
        assert!((r.speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validate_accepts_legal_schedule() {
        let tr = chain2();
        let r = ExecReport {
            engine: "x".into(),
            workers: 1,
            makespan: 20,
            sequential: 20,
            order: vec![0, 1],
            start: vec![0, 10],
            end: vec![10, 20],
        };
        assert!(r.validate(&tr).is_ok());
    }

    #[test]
    fn validate_rejects_overlap_on_edge() {
        let tr = chain2();
        let r = ExecReport {
            engine: "x".into(),
            workers: 2,
            makespan: 15,
            sequential: 20,
            order: vec![0, 1],
            start: vec![0, 5],
            end: vec![10, 15],
        };
        let err = r.validate(&tr).unwrap_err();
        assert!(err.contains("before predecessor"), "{err}");
    }

    #[test]
    fn validate_rejects_wrong_order() {
        let tr = chain2();
        let r = ExecReport {
            engine: "x".into(),
            workers: 1,
            makespan: 20,
            sequential: 20,
            order: vec![1, 0],
            start: vec![10, 0],
            end: vec![20, 10],
        };
        assert!(r.validate(&tr).is_err());
    }
}
