//! Shared-nothing parallel vocabulary: the primitives behind the sweep
//! harness's `par_map` and the cluster's epoch-parallel shard lanes.
//!
//! The build environment has no crates.io access, so there is no `rayon`
//! and no `crossbeam`: everything here is built on `std::thread::scope`,
//! atomics and `UnsafeCell`. Three pieces:
//!
//! * [`DisjointSlice`] — a slice whose elements are mutated from several
//!   threads under a *disjoint-index* contract. It backs the write-once
//!   result slots of `par_map` (each index claimed by exactly one thread
//!   through an atomic cursor) and the cluster's shard lanes (each lane
//!   owned by one worker thread during an epoch, by the coordinator
//!   between epochs).
//! * [`PhaseCell`] — a single value handed back and forth between threads
//!   at barrier-separated phases (the epoch control block).
//! * [`SpinBarrier`] — a sense-reversing spinning barrier with panic
//!   poisoning, cheap enough to sit inside a simulation epoch loop where
//!   `std::sync::Barrier`'s mutex/condvar round trip would dominate.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A slice shared across threads under a disjoint-access contract.
///
/// Wraps `&mut [T]` so that multiple threads can each mutate *their own*
/// elements without locks. The wrapper itself enforces nothing beyond
/// bounds checks — soundness rests entirely on the caller's discipline,
/// which is why [`DisjointSlice::get`] is `unsafe`.
///
/// # Safety contract
///
/// For every index `i`, at most one thread may hold the `&mut T` returned
/// by `get(i)` at a time, and handing an index from one thread to another
/// must happen across a synchronisation point (a barrier wait, a scoped
/// join, an atomic acquire/release pair) so the writes are visible.
///
/// The two users in this workspace satisfy it structurally:
///
/// * `par_map` result slots: indices are claimed through a shared atomic
///   cursor (`fetch_add`), so no two threads ever see the same index; the
///   scoped join publishes the writes back to the caller.
/// * cluster shard lanes and per-task state: each lane (and each task's
///   readiness state, owned by the task's placement shard) is touched by
///   exactly one worker thread during an epoch's compute phase, and only
///   by the coordinator between the two barrier waits that delimit it.
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: sending `&DisjointSlice` to another thread only grants access
// through the `unsafe` accessors, whose contract (disjoint indices,
// synchronised hand-off) is exactly what makes cross-thread `&mut T`
// sound. `T: Send` is required because elements are mutated from (and
// may be dropped on) threads other than the owner's.
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wraps a mutable slice for disjoint multi-threaded access.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    ///
    /// The caller must uphold the type's disjoint-access contract: no
    /// other thread may access index `i` while the returned borrow lives,
    /// and cross-thread hand-offs of an index must be synchronised.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[allow(clippy::mut_from_ref)] // the whole point, governed by the contract
    pub unsafe fn get(&self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &mut *self.ptr.add(i)
    }

    /// The whole slice, mutably.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to *every* index for the
    /// lifetime of the returned borrow — the coordinator-between-barriers
    /// position, when all worker threads are parked.
    #[allow(clippy::mut_from_ref)] // the whole point, governed by the contract
    pub unsafe fn as_mut_slice(&self) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

impl<T> std::fmt::Debug for DisjointSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DisjointSlice(len={})", self.len)
    }
}

/// A single value handed between threads at barrier-separated phases.
///
/// The multi-value counterpart is [`DisjointSlice`]; `PhaseCell` is the
/// one-element case (e.g. an epoch control block written by a coordinator
/// thread and read by workers after a barrier).
pub struct PhaseCell<T> {
    cell: UnsafeCell<T>,
}

// SAFETY: same argument as `DisjointSlice` with a single element.
unsafe impl<T: Send> Sync for PhaseCell<T> {}

impl<T> PhaseCell<T> {
    /// Wraps a value for phase-disciplined shared access.
    pub fn new(value: T) -> Self {
        PhaseCell {
            cell: UnsafeCell::new(value),
        }
    }

    /// Mutable access to the value.
    ///
    /// # Safety
    ///
    /// At most one thread may hold the returned borrow at a time, and
    /// hand-offs between threads must cross a synchronisation point.
    #[allow(clippy::mut_from_ref)] // the whole point, governed by the contract
    pub unsafe fn get(&self) -> &mut T {
        &mut *self.cell.get()
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

impl<T> std::fmt::Debug for PhaseCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PhaseCell")
    }
}

/// A sense-reversing spinning barrier with panic poisoning.
///
/// Simulation epochs are microseconds long, so the barrier at each epoch
/// edge must cost nanoseconds, not a mutex/condvar round trip. Waiters
/// spin with [`std::hint::spin_loop`], falling back to
/// [`std::thread::yield_now`] so oversubscribed machines (more waiters
/// than cores) still make progress.
///
/// A thread that observes a panic in its phase work calls
/// [`SpinBarrier::poison`]; every current and future waiter then panics
/// instead of spinning forever on a participant that will never arrive.
#[derive(Debug)]
pub struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
    total: usize,
}

impl SpinBarrier {
    /// A barrier for `total` participating threads.
    ///
    /// # Panics
    ///
    /// Panics when `total` is zero.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a barrier needs at least one participant");
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            total,
        }
    }

    /// Marks the barrier poisoned: every waiter panics out of its spin.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Blocks until all `total` participants have called `wait` for this
    /// generation; returns `true` on exactly one of them (the last
    /// arriver). The release/acquire pair on the generation counter makes
    /// every write performed before a participant's `wait` visible to all
    /// participants after it — the hand-off edge [`DisjointSlice`] and
    /// [`PhaseCell`] users rely on.
    ///
    /// # Panics
    ///
    /// Panics when the barrier is (or becomes) poisoned.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
            if self.poisoned.load(Ordering::Acquire) {
                panic!("spin barrier poisoned by a panicking participant");
            }
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if self.poisoned.load(Ordering::Acquire) {
                panic!("spin barrier poisoned by a panicking participant");
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Oversubscribed (or the leader is descheduled): yield the
                // core instead of burning it.
                std::thread::yield_now();
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            panic!("spin barrier poisoned by a panicking participant");
        }
        false
    }
}

/// The default worker-thread count: the machine's available parallelism.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn disjoint_slice_cursor_claims_are_exclusive() {
        // The par_map shape: an atomic cursor hands out indices, each
        // written exactly once from whichever thread claimed it.
        let mut out = vec![0u64; 1000];
        let cursor = AtomicUsize::new(0);
        let slots = DisjointSlice::new(&mut out);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    // SAFETY: the cursor hands each index to one thread;
                    // the scoped join publishes the writes.
                    unsafe { *slots.get(i) = i as u64 * 3 };
                });
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn disjoint_slice_bounds_checked() {
        let mut v = vec![0u8; 4];
        let s = DisjointSlice::new(&mut v);
        // SAFETY: single-threaded access.
        unsafe {
            s.get(4);
        }
    }

    #[test]
    fn spin_barrier_phases_hand_off_writes() {
        // Coordinator/worker shape: workers fill their lanes, the
        // coordinator sums between barriers, workers read the published
        // total next phase.
        const THREADS: usize = 4;
        const ROUNDS: usize = 50;
        let barrier = SpinBarrier::new(THREADS);
        let mut lanes = vec![0u64; THREADS];
        let shared = DisjointSlice::new(&mut lanes);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let barrier = &barrier;
                let shared = &shared;
                let total = &total;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        // SAFETY: lane `tid` is this thread's alone during
                        // the compute phase.
                        unsafe { *shared.get(tid) = (round * (tid + 1)) as u64 };
                        if barrier.wait() {
                            // SAFETY: every worker is parked between the
                            // two waits; the leader owns all lanes.
                            let sum: u64 = (0..THREADS).map(|i| unsafe { *shared.get(i) }).sum();
                            total.store(sum, Ordering::Release);
                        }
                        barrier.wait();
                        let expect = (round * THREADS * (THREADS + 1) / 2) as u64;
                        assert_eq!(total.load(Ordering::Acquire), expect);
                    }
                });
            }
        });
    }

    #[test]
    fn poisoned_barrier_releases_waiters() {
        let barrier = SpinBarrier::new(2);
        let r = std::thread::scope(|scope| {
            let h = scope.spawn(|| barrier.wait());
            std::thread::sleep(std::time::Duration::from_millis(5));
            barrier.poison();
            h.join()
        });
        assert!(r.is_err(), "waiter must panic out of a poisoned barrier");
    }

    #[test]
    fn phase_cell_roundtrip() {
        let cell = PhaseCell::new(7u32);
        // SAFETY: single-threaded access.
        unsafe {
            *cell.get() += 1;
        }
        assert_eq!(cell.into_inner(), 8);
    }
}
