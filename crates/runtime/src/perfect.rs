//! The Perfect Simulator: zero-overhead list scheduling.
//!
//! The paper feeds the same traces to a "Perfect Simulator which measures
//! critical-path task execution to show the roofline speedup of each OmpSs
//! application" (Section IV-A). This module implements it: tasks start the
//! moment a worker is free and every predecessor has finished; scheduling,
//! dependence management and communication cost nothing.

use crate::report::ExecReport;
use picos_trace::{TaskGraph, TaskId, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Runs the zero-overhead list scheduler with `workers` workers.
///
/// Ready tasks are started in creation order (the same tie-break the
/// runtime's FIFO queue would produce).
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn perfect_schedule(trace: &Trace, workers: usize) -> ExecReport {
    assert!(workers > 0, "need at least one worker");
    let graph = TaskGraph::build(trace);
    let n = trace.len();
    let mut pred_remaining: Vec<u32> = (0..n)
        .map(|i| graph.preds(TaskId::new(i as u32)).len() as u32)
        .collect();
    let mut start = vec![0u64; n];
    let mut end = vec![0u64; n];
    let mut order = Vec::with_capacity(n);
    // Taskwait segments schedule one after another; the offset of each
    // segment is the completion time of everything before it.
    let mut offset = 0u64;

    for segment in trace.segments() {
        // Min-heaps: ready tasks by creation order; completions by time.
        let mut ready: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        let mut completions: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let seg_len = segment.len();
        for i in segment.clone() {
            // Cross-segment predecessors finished before `offset` by
            // construction, so only in-segment edges can still be pending.
            let pending = graph
                .preds(TaskId::new(i as u32))
                .iter()
                .filter(|&&p| segment.contains(&(p as usize)))
                .count() as u32;
            pred_remaining[i] = pending;
            if pending == 0 {
                ready.push(Reverse(i as u32));
            }
        }
        let mut idle = workers;
        let mut now = offset;
        let mut done = 0usize;
        while done < seg_len {
            while idle > 0 {
                let Some(Reverse(t)) = ready.pop() else {
                    break;
                };
                start[t as usize] = now;
                order.push(t);
                let fin = now + trace.tasks()[t as usize].duration;
                end[t as usize] = fin;
                completions.push(Reverse((fin, t)));
                idle -= 1;
            }
            let Some(Reverse((t_fin, task))) = completions.pop() else {
                unreachable!("tasks remain but nothing is running: cyclic graph?");
            };
            now = t_fin;
            idle += 1;
            done += 1;
            for &s in graph.succs(TaskId::new(task)) {
                if !segment.contains(&(s as usize)) {
                    continue; // satisfied by the barrier itself
                }
                pred_remaining[s as usize] -= 1;
                if pred_remaining[s as usize] == 0 {
                    ready.push(Reverse(s));
                }
            }
            offset = offset.max(t_fin);
        }
    }

    ExecReport {
        engine: "perfect".into(),
        workers,
        makespan: end.iter().copied().max().unwrap_or(0),
        sequential: trace.sequential_time(),
        order,
        start,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::{gen, Dependence, KernelClass, Trace};

    #[test]
    fn independent_tasks_scale_linearly() {
        let mut tr = Trace::new("ind");
        for _ in 0..8 {
            tr.push(KernelClass::GENERIC, [], 100);
        }
        for w in [1, 2, 4, 8] {
            let r = perfect_schedule(&tr, w);
            assert_eq!(r.makespan, 800 / w as u64);
            assert!((r.speedup() - w as f64).abs() < 1e-9);
            r.validate(&tr).unwrap();
        }
    }

    #[test]
    fn chain_never_speeds_up() {
        let mut tr = Trace::new("chain");
        for _ in 0..10 {
            tr.push(KernelClass::GENERIC, [Dependence::inout(0xA)], 50);
        }
        let r = perfect_schedule(&tr, 8);
        assert_eq!(r.makespan, 500);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_work() {
        for seed in 0..5 {
            let tr = gen::random_trace(gen::RandomConfig::default(), seed);
            let g = picos_trace::TaskGraph::build(&tr);
            let cp = g.critical_path();
            let work = tr.sequential_time();
            for w in [1usize, 3, 7] {
                let r = perfect_schedule(&tr, w);
                assert!(r.makespan >= cp, "seed {seed} w {w}");
                assert!(r.makespan >= work.div_ceil(w as u64), "seed {seed} w {w}");
                assert!(r.makespan <= work, "seed {seed} w {w}");
                r.validate(&tr).unwrap();
            }
        }
    }

    #[test]
    fn infinite_workers_hit_critical_path() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(256));
        let g = picos_trace::TaskGraph::build(&tr);
        let r = perfect_schedule(&tr, tr.len());
        assert_eq!(r.makespan, g.critical_path());
    }

    #[test]
    fn speedup_monotone_in_workers() {
        let tr = gen::heat(gen::HeatConfig::paper(128));
        let mut prev = 0.0;
        for w in [1, 2, 4, 8, 16] {
            let s = perfect_schedule(&tr, w).speedup();
            assert!(s + 1e-9 >= prev, "w {w}: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn single_worker_is_sequential() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(256));
        let r = perfect_schedule(&tr, 1);
        assert_eq!(r.makespan, tr.sequential_time());
    }
}
