//! The Perfect Simulator: zero-overhead list scheduling.
//!
//! The paper feeds the same traces to a "Perfect Simulator which measures
//! critical-path task execution to show the roofline speedup of each OmpSs
//! application" (Section IV-A). This module implements it as an
//! incremental [`PerfectSession`]: tasks start the moment a worker is free
//! and every predecessor has finished; scheduling, dependence management
//! and communication cost nothing. [`perfect_schedule`] is the batch
//! driver over a session.

use crate::depmap::SoftwareDeps;
use crate::report::ExecReport;
use crate::session::{
    feed_trace, Admission, EventLog, Ingest, ScheduleLog, SessionConfig, SessionCore, SimEvent,
};
use picos_metrics::span::{SpanKind, SpanLog};
use picos_trace::{TaskDescriptor, TaskId, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// An incremental zero-overhead list scheduler.
///
/// Ready tasks start in creation order (the tie-break the runtime's FIFO
/// queue would produce) the instant a worker is free; dependence analysis
/// is the real incremental algorithm ([`SoftwareDeps`]) at zero cycle
/// cost. Feeding a whole trace and finishing reproduces
/// [`perfect_schedule`] bit-exactly.
///
/// Cloning is a deep copy of the full dynamic state — the fork primitive
/// of the snapshot subsystem.
#[derive(Debug, Clone)]
pub struct PerfectSession {
    workers: usize,
    idle: usize,
    now: u64,
    deps: SoftwareDeps,
    /// Admitted tasks not yet handed to the dependence tracker (taskwait
    /// gates hold them back), as `(dense id, descriptor)`.
    pending: VecDeque<(u32, TaskDescriptor)>,
    /// Ready tasks by ascending id.
    ready: BinaryHeap<Reverse<u32>>,
    /// Running tasks by `(completion time, id)`.
    running: BinaryHeap<Reverse<(u64, u32)>>,
    durs: Vec<u64>,
    ingest: Ingest,
    log: ScheduleLog,
    events: EventLog,
    /// Requested telemetry window; the zero-cost scheduler has no live
    /// units to probe, so its timeline is derived from the finished
    /// schedule at `finish` time.
    timeline_window: Option<u64>,
    /// Lifecycle span recorder, attached by [`SessionConfig::trace_spans`].
    /// Observation-only: every record site is one branch when absent.
    spans: Option<SpanLog>,
    /// Scratch for [`SoftwareDeps::finish_into`].
    newly: Vec<TaskId>,
}

impl PerfectSession {
    /// Opens a session with `workers` workers.
    ///
    /// # Errors
    ///
    /// Returns a message when `workers` is zero.
    pub fn new(workers: usize, cfg: SessionConfig) -> Result<Self, String> {
        if workers == 0 {
            return Err("perfect scheduler needs at least one worker".into());
        }
        cfg.validate()?;
        Ok(PerfectSession {
            workers,
            idle: workers,
            now: 0,
            deps: SoftwareDeps::new(0),
            pending: VecDeque::new(),
            ready: BinaryHeap::new(),
            running: BinaryHeap::new(),
            durs: Vec::new(),
            ingest: Ingest::new(cfg.window),
            log: ScheduleLog::default(),
            events: EventLog::new(cfg.collect_events),
            timeline_window: cfg.timeline_window,
            spans: cfg.trace_spans.then(SpanLog::new),
            newly: Vec::new(),
        })
    }

    /// The telemetry window this session was opened with, if any.
    pub fn timeline_window(&self) -> Option<u64> {
        self.timeline_window
    }

    /// Hands gate-cleared pending tasks to the dependence tracker and
    /// starts every ready task a free worker can take, all at the current
    /// time (zero-cost operations). One pass suffices: starting a task
    /// cannot clear a gate (only completions can) or add ready tasks.
    fn pump(&mut self) {
        while let Some(&(id, _)) = self.pending.front() {
            if !self.ingest.feedable(id as usize, self.ingest.finished) {
                break;
            }
            let (id, task) = self.pending.pop_front().expect("peeked");
            if self.deps.submit(&task) {
                self.ready.push(Reverse(id));
            }
        }
        while self.idle > 0 {
            let Some(Reverse(id)) = self.ready.pop() else {
                break;
            };
            let end = self.log.begin(id, self.now, self.durs[id as usize]);
            self.events.push(SimEvent::TaskStarted {
                task: id,
                at: self.now,
            });
            if let Some(log) = &mut self.spans {
                log.record(SpanKind::Started, self.now, 0, id, 0);
            }
            self.running.push(Reverse((end, id)));
            self.idle -= 1;
        }
    }

    /// Pops the earliest completion, releases its successors and pumps.
    /// Returns `false` when nothing is running.
    fn fire_next(&mut self) -> bool {
        let Some(Reverse((fin, id))) = self.running.pop() else {
            return false;
        };
        self.now = fin;
        self.idle += 1;
        self.ingest.finished += 1;
        self.events
            .push(SimEvent::TaskFinished { task: id, at: fin });
        if let Some(log) = &mut self.spans {
            log.record(SpanKind::Finished, fin, 0, id, 0);
        }
        self.newly.clear();
        let mut newly = std::mem::take(&mut self.newly);
        self.deps.finish_into(TaskId::new(id), &mut newly);
        for t in newly.drain(..) {
            self.ready.push(Reverse(t.raw()));
        }
        self.newly = newly;
        self.pump();
        true
    }

    /// Whether the next submission cannot be ingested right now (window
    /// saturated or the pending head gated behind a taskwait).
    fn ingest_blocked(&self) -> bool {
        if self.ingest.saturated() {
            return true;
        }
        match self.pending.front() {
            Some(&(id, _)) => !self.ingest.feedable(id as usize, self.ingest.finished),
            None => false,
        }
    }

    /// Serializes the full dynamic state. Restore by opening a session
    /// with the same configuration and calling
    /// [`PerfectSession::load_state`].
    pub fn save_state(&self) -> picos_trace::Value {
        use picos_trace::snap::Enc;
        let mut ready: Vec<u32> = self.ready.iter().map(|r| r.0).collect();
        ready.sort_unstable();
        let mut running: Vec<(u64, u32)> = self.running.iter().map(|r| r.0).collect();
        running.sort_unstable();
        let mut e = Enc::new();
        e.usize(self.workers)
            .opt_u64(self.timeline_window)
            .bool(self.spans.is_some())
            .usize(self.idle)
            .u64(self.now)
            .val(self.deps.save_state())
            .seq(self.pending.iter(), |e, (id, t)| {
                e.u32(*id);
                crate::snap::enc_task(e, t);
            })
            .u32s(ready)
            .seq(running, |e, (end, id)| {
                e.u64(end).u32(id);
            })
            .u64s(self.durs.iter().copied())
            .val(self.ingest.save_state())
            .val(self.log.save_state())
            .val(self.events.save_state())
            .val(match &self.spans {
                Some(s) => s.save_state(),
                None => picos_trace::Value::Null,
            });
        e.done()
    }

    /// Overwrites the dynamic state from [`PerfectSession::save_state`]
    /// output.
    ///
    /// # Errors
    ///
    /// Returns [`picos_trace::SnapError`] on a malformed record or a
    /// configuration mismatch (worker count, telemetry attachments,
    /// in-flight window).
    pub fn load_state(&mut self, v: &picos_trace::Value) -> Result<(), picos_trace::SnapError> {
        use picos_trace::snap::{guard, Dec};
        let mut d = Dec::new(v, "perfect session")?;
        guard("perfect workers", d.usize()? as u64, self.workers as u64)?;
        let window = d.opt_u64()?;
        if window != self.timeline_window {
            return Err(picos_trace::SnapError::new(
                "perfect session: timeline window mismatch",
            ));
        }
        guard(
            "perfect spans attached",
            d.bool()? as u64,
            self.spans.is_some() as u64,
        )?;
        let idle = d.usize()?;
        let now = d.u64()?;
        let deps = d.val()?;
        let pending = d.seq(|d| Ok((d.u32()?, crate::snap::dec_task(d)?)))?;
        let ready = d.u32s()?;
        let running = d.seq(|d| Ok((d.u64()?, d.u32()?)))?;
        let durs = d.u64s()?;
        let ingest = d.val()?;
        let log = d.val()?;
        let events = d.val()?;
        let spans = d.val()?;
        self.deps.load_state(deps)?;
        self.ingest.load_state(ingest)?;
        self.log.load_state(log)?;
        self.events.load_state(events)?;
        self.spans = match spans {
            picos_trace::Value::Null => None,
            v => Some(picos_metrics::span::SpanLog::load_state(v)?),
        };
        self.idle = idle;
        self.now = now;
        self.pending = pending.into();
        self.ready = ready.into_iter().map(Reverse).collect();
        self.running = running.into_iter().map(Reverse).collect();
        self.durs = durs;
        Ok(())
    }

    /// Runs the session to quiescence and returns the schedule report.
    pub fn into_report(self) -> ExecReport {
        self.into_output().0
    }

    /// Like [`PerfectSession::into_report`], and also returns the span
    /// log (recording order) when the session was opened with
    /// [`SessionConfig::trace_spans`].
    pub fn into_output(mut self) -> (ExecReport, Option<SpanLog>) {
        self.pump();
        while self.fire_next() {}
        debug_assert!(self.pending.is_empty(), "gated tasks never released");
        let spans = self.spans.take();
        (self.log.into_report("perfect", self.workers), spans)
    }
}

impl SessionCore for PerfectSession {
    fn submit(&mut self, task: &TaskDescriptor) -> Admission {
        if self.ingest.saturated() {
            return Admission::Backpressured;
        }
        let id = self.ingest.admit();
        self.durs.push(task.duration);
        self.log.admit(task.duration);
        if let Some(log) = &mut self.spans {
            log.record(SpanKind::Submitted, self.now, 0, id, 0);
        }
        let mut t = task.clone();
        t.id = TaskId::new(id);
        self.pending.push_back((id, t));
        Admission::Accepted
    }

    fn barrier(&mut self) {
        self.ingest.barrier();
    }

    fn advance_to(&mut self, cycle: u64) {
        self.pump();
        while matches!(self.running.peek(), Some(&Reverse((fin, _))) if fin <= cycle) {
            self.fire_next();
        }
        self.now = self.now.max(cycle);
    }

    fn step(&mut self) -> bool {
        self.pump();
        if self.ingest_blocked() {
            self.fire_next()
        } else {
            false
        }
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn in_flight(&self) -> usize {
        self.ingest.in_flight()
    }

    fn drain_events(&mut self, out: &mut Vec<SimEvent>) {
        self.events.drain_into(out);
    }

    fn reserve(&mut self, additional: usize) {
        self.ingest.reserve(additional);
        self.log.reserve(additional);
        self.durs.reserve(additional);
    }
}

/// Runs the zero-overhead list scheduler with `workers` workers: opens a
/// [`PerfectSession`], feeds the whole trace and finishes it.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn perfect_schedule(trace: &Trace, workers: usize) -> ExecReport {
    let mut s =
        PerfectSession::new(workers, SessionConfig::batch()).expect("need at least one worker");
    feed_trace(&mut s, trace).expect("unbounded window cannot stall");
    s.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::{gen, Dependence, KernelClass, Trace};

    #[test]
    fn independent_tasks_scale_linearly() {
        let mut tr = Trace::new("ind");
        for _ in 0..8 {
            tr.push(KernelClass::GENERIC, [], 100);
        }
        for w in [1, 2, 4, 8] {
            let r = perfect_schedule(&tr, w);
            assert_eq!(r.makespan, 800 / w as u64);
            assert!((r.speedup() - w as f64).abs() < 1e-9);
            r.validate(&tr).unwrap();
        }
    }

    #[test]
    fn chain_never_speeds_up() {
        let mut tr = Trace::new("chain");
        for _ in 0..10 {
            tr.push(KernelClass::GENERIC, [Dependence::inout(0xA)], 50);
        }
        let r = perfect_schedule(&tr, 8);
        assert_eq!(r.makespan, 500);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_work() {
        for seed in 0..5 {
            let tr = gen::random_trace(gen::RandomConfig::default(), seed);
            let g = picos_trace::TaskGraph::build(&tr);
            let cp = g.critical_path();
            let work = tr.sequential_time();
            for w in [1usize, 3, 7] {
                let r = perfect_schedule(&tr, w);
                assert!(r.makespan >= cp, "seed {seed} w {w}");
                assert!(r.makespan >= work.div_ceil(w as u64), "seed {seed} w {w}");
                assert!(r.makespan <= work, "seed {seed} w {w}");
                r.validate(&tr).unwrap();
            }
        }
    }

    #[test]
    fn infinite_workers_hit_critical_path() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(256));
        let g = picos_trace::TaskGraph::build(&tr);
        let r = perfect_schedule(&tr, tr.len());
        assert_eq!(r.makespan, g.critical_path());
    }

    #[test]
    fn speedup_monotone_in_workers() {
        let tr = gen::heat(gen::HeatConfig::paper(128));
        let mut prev = 0.0;
        for w in [1, 2, 4, 8, 16] {
            let s = perfect_schedule(&tr, w).speedup();
            assert!(s + 1e-9 >= prev, "w {w}: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn single_worker_is_sequential() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(256));
        let r = perfect_schedule(&tr, 1);
        assert_eq!(r.makespan, tr.sequential_time());
    }

    #[test]
    fn zero_workers_is_a_session_error() {
        assert!(PerfectSession::new(0, SessionConfig::batch()).is_err());
    }

    #[test]
    fn session_respects_taskwait_gates() {
        let mut tr = Trace::new("barriered");
        for _ in 0..4 {
            tr.push(KernelClass::GENERIC, [], 100);
        }
        tr.push_taskwait();
        tr.push(KernelClass::GENERIC, [], 100);
        let r = perfect_schedule(&tr, 4);
        r.validate(&tr).unwrap();
        assert_eq!(r.start[4], 100, "post-barrier task waits for the prefix");
    }

    #[test]
    fn open_session_does_not_run_ahead_of_input() {
        // The bit-exactness mechanism: while the session can ingest, step()
        // refuses to move the clock.
        let mut tr = Trace::new("t");
        tr.push(KernelClass::GENERIC, [], 50);
        let mut s = PerfectSession::new(2, SessionConfig::batch()).unwrap();
        assert_eq!(s.submit(&tr.tasks()[0]), Admission::Accepted);
        assert!(!s.step(), "open unblocked session must not advance");
        assert_eq!(s.now(), 0);
        let r = s.into_report();
        assert_eq!(r.makespan, 50);
    }

    #[test]
    fn windowed_session_backpressures_and_completes() {
        let mut tr = Trace::new("t");
        for _ in 0..10 {
            tr.push(KernelClass::GENERIC, [], 10);
        }
        let mut s = PerfectSession::new(1, SessionConfig::windowed(2)).unwrap();
        let mut backpressured = 0;
        for t in tr.iter() {
            loop {
                match s.submit(t) {
                    Admission::Accepted => break,
                    Admission::Backpressured => {
                        backpressured += 1;
                        assert!(s.step(), "blocked session must drain");
                    }
                }
            }
        }
        assert!(backpressured > 0);
        let r = s.into_report();
        r.validate(&tr).unwrap();
        assert_eq!(r.makespan, 100);
    }

    #[test]
    fn paced_arrivals_delay_starts() {
        let mut tr = Trace::new("t");
        tr.push(KernelClass::GENERIC, [], 10);
        tr.push(KernelClass::GENERIC, [], 10);
        let mut s = PerfectSession::new(2, SessionConfig::batch()).unwrap();
        s.submit(&tr.tasks()[0]);
        s.advance_to(500);
        s.submit(&tr.tasks()[1]);
        let r = s.into_report();
        assert_eq!(r.start[0], 0);
        assert_eq!(r.start[1], 500, "second task arrived at cycle 500");
    }

    /// Feeds tasks `range` of the trace (with any taskwait gates at their
    /// recorded positions), stepping through backpressure.
    fn feed_range(s: &mut PerfectSession, tr: &Trace, range: std::ops::Range<usize>) {
        for i in range {
            if tr.barriers().contains(&(i as u32)) {
                s.barrier();
            }
            while s.submit(&tr.tasks()[i]) == Admission::Backpressured {
                assert!(s.step(), "backpressured session must progress");
            }
        }
    }

    #[test]
    fn snapshot_restore_equals_continuous() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let cfg = SessionConfig {
            trace_spans: true,
            ..SessionConfig::windowed(16)
        };
        for pause in [0usize, 7, 40] {
            let mut cont = PerfectSession::new(4, cfg).unwrap();
            let mut live = PerfectSession::new(4, cfg).unwrap();
            feed_range(&mut cont, &tr, 0..pause);
            feed_range(&mut live, &tr, 0..pause);
            // Snapshot through the JSON text form, restore into a fresh
            // identically-configured session.
            let text = picos_trace::snap::value_to_json(&live.save_state());
            let v = picos_trace::snap::value_from_json(&text).unwrap();
            let mut restored = PerfectSession::new(4, cfg).unwrap();
            restored.load_state(&v).unwrap();
            assert_eq!(restored.now(), live.now(), "pause {pause}");
            feed_range(&mut cont, &tr, pause..tr.len());
            feed_range(&mut restored, &tr, pause..tr.len());
            let (rc, sc) = cont.into_output();
            let (rr, sr) = restored.into_output();
            assert_eq!(rc, rr, "pause {pause}: report diverged");
            assert_eq!(sc, sr, "pause {pause}: span log diverged");
        }
    }

    #[test]
    fn fork_is_an_independent_replica() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let mut live = PerfectSession::new(2, SessionConfig::windowed(8)).unwrap();
        feed_range(&mut live, &tr, 0..24);
        let fork = live.clone();
        // Drive the fork to completion; the original must be untouched.
        let before_now = live.now();
        let before_inflight = live.in_flight();
        let mut fork = fork;
        feed_range(&mut fork, &tr, 24..tr.len());
        let rf = fork.into_report();
        rf.validate(&tr).unwrap();
        assert_eq!(live.now(), before_now);
        assert_eq!(live.in_flight(), before_inflight);
        feed_range(&mut live, &tr, 24..tr.len());
        assert_eq!(live.into_report(), rf, "fork and original agree");
    }

    #[test]
    fn snapshot_rejects_config_mismatch() {
        let mut s = PerfectSession::new(4, SessionConfig::batch()).unwrap();
        let snap = s.save_state();
        let mut other = PerfectSession::new(2, SessionConfig::batch()).unwrap();
        let err = other.load_state(&snap).unwrap_err();
        assert!(err.to_string().contains("perfect workers"), "{err}");
        s.load_state(&snap).unwrap();
    }

    #[test]
    fn events_record_schedule_activity() {
        let mut tr = Trace::new("t");
        tr.push(KernelClass::GENERIC, [], 10);
        let mut s = PerfectSession::new(
            1,
            SessionConfig {
                collect_events: true,
                ..SessionConfig::batch()
            },
        )
        .unwrap();
        s.submit(&tr.tasks()[0]);
        let mut out = Vec::new();
        s.drain_events(&mut out);
        assert!(out.is_empty(), "no activity before the session runs");
        s.advance_to(10);
        s.drain_events(&mut out);
        assert_eq!(
            out,
            vec![
                SimEvent::TaskStarted { task: 0, at: 0 },
                SimEvent::TaskFinished { task: 0, at: 10 },
            ]
        );
    }
}
