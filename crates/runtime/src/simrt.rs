//! Discrete-event model of the Nanos++ software-only runtime.
//!
//! One master thread creates and submits tasks serially, paying the
//! [`NanosCostModel`] overheads that the paper's Figure 10 measures; worker
//! threads dequeue ready tasks through a serializing scheduler lock, execute
//! them for their trace duration, and release successors on completion. The
//! dependence analysis itself is the real algorithm
//! ([`crate::SoftwareDeps`]), so the schedule is always a legal topological
//! order of the dataflow graph — only its *timing* reflects the software
//! overheads.
//!
//! This is the reproduction's stand-in for the paper's Nanos++ baseline: its
//! throughput is bounded by the master (creation + submission per task) and
//! by scheduler-lock contention that grows with the thread count, which is
//! what makes it collapse for fine-grained tasks (Figures 1 and 11).

use crate::cost::NanosCostModel;
use crate::depmap::SoftwareDeps;
use crate::report::ExecReport;
use picos_trace::{TaskId, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of the software runtime.
#[derive(Debug, Clone, Copy)]
pub struct SwRuntimeConfig {
    /// Total threads, master included (the paper's "workers").
    pub workers: usize,
    /// Whether the master joins execution once all tasks are created
    /// (OmpSs behaviour at the final taskwait).
    pub master_executes: bool,
    /// Per-operation overheads.
    pub cost: NanosCostModel,
}

impl SwRuntimeConfig {
    /// `workers` threads with default costs.
    pub fn with_workers(workers: usize) -> Self {
        SwRuntimeConfig {
            workers,
            master_executes: true,
            cost: NanosCostModel::default(),
        }
    }
}

/// Errors from the software-runtime simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwError {
    /// Invalid configuration.
    Config(String),
    /// The event loop stopped with unfinished tasks (would indicate a bug
    /// in the dependence tracker).
    Stuck {
        /// Tasks completed before the stall.
        finished: usize,
        /// Total tasks.
        total: usize,
    },
}

impl std::fmt::Display for SwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwError::Config(m) => write!(f, "invalid configuration: {m}"),
            SwError::Stuck { finished, total } => {
                write!(f, "runtime stuck after {finished}/{total} tasks")
            }
        }
    }
}

impl std::error::Error for SwError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Creation + submission of task `i` completes.
    MasterDone(u32),
    /// Worker `w` looks for work.
    TryDequeue(usize),
    /// Worker `w` finished task `t`.
    TaskDone(usize, u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    Parked,
    Scheduled,
    Running,
}

/// Runs a trace on the software runtime model.
///
/// # Errors
///
/// Returns [`SwError::Config`] for a zero worker count (or one worker with
/// `master_executes` disabled) and [`SwError::Stuck`] if the simulation
/// cannot finish (which would indicate an internal bug).
pub fn run_software(trace: &Trace, cfg: SwRuntimeConfig) -> Result<ExecReport, SwError> {
    if cfg.workers == 0 {
        return Err(SwError::Config("need at least one thread".into()));
    }
    if cfg.workers == 1 && !cfg.master_executes {
        return Err(SwError::Config(
            "a single thread must execute tasks (enable master_executes)".into(),
        ));
    }
    let n = trace.len();
    let w_total = cfg.workers;
    let threads = w_total;
    let mut deps = SoftwareDeps::new(n);
    let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, t: u64, e: Ev| {
        seq += 1;
        heap.push(Reverse((t, seq, e)));
    };

    let mut ready_q: VecDeque<u32> = VecDeque::new();
    // Worker 0 is the master; it participates only after creation.
    let mut state = vec![WorkerState::Parked; w_total];
    let mut lock_free = 0u64;
    let mut start = vec![0u64; n];
    let mut end = vec![0u64; n];
    let mut order = Vec::with_capacity(n);
    let mut finished = 0usize;

    // The scheduler lock: serializes enqueues, dequeues and releases.
    let acquire = |lock_free: &mut u64, at: u64, hold: u64| -> u64 {
        let s = (*lock_free).max(at);
        *lock_free = s + hold;
        s + hold
    };

    if n > 0 {
        let first_cost = cfg.cost.per_task(trace.tasks()[0].num_deps(), threads);
        push(&mut heap, first_cost, Ev::MasterDone(0));
    }

    let mut master_done = n == 0;

    // Wakes one parked worker for a task enqueued at time `at`.
    macro_rules! wake_one {
        ($at:expr) => {
            if let Some(w) = state
                .iter()
                .enumerate()
                .filter(|&(w, s)| *s == WorkerState::Parked && (w != 0 || master_done))
                .map(|(w, _)| w)
                .next()
            {
                state[w] = WorkerState::Scheduled;
                push(&mut heap, $at, Ev::TryDequeue(w));
            }
        };
    }

    // Master parked at a taskwait: waiting for `j` tasks to finish before
    // creating task `j`.
    let mut master_parked_at: Option<u32> = None;

    // Reusable buffer for the successors released by each finish.
    let mut newly: Vec<TaskId> = Vec::new();

    while let Some(Reverse((now, _, ev))) = heap.pop() {
        match ev {
            Ev::MasterDone(i) => {
                let task = &trace.tasks()[i as usize];
                let is_ready = deps.submit(task);
                let mut master_free = now;
                if is_ready {
                    let t_enq = acquire(&mut lock_free, now, cfg.cost.enqueue);
                    ready_q.push_back(i);
                    wake_one!(t_enq);
                    master_free = t_enq;
                }
                let j = i + 1;
                if (j as usize) < n {
                    if trace.barriers().contains(&j) && finished < j as usize {
                        // taskwait: the master blocks until every earlier
                        // task finished (paper, Section II-A).
                        master_parked_at = Some(j);
                    } else {
                        let next = &trace.tasks()[j as usize];
                        let cost = cfg.cost.per_task(next.num_deps(), threads);
                        push(&mut heap, master_free + cost, Ev::MasterDone(j));
                    }
                } else {
                    master_done = true;
                    if cfg.master_executes {
                        state[0] = WorkerState::Scheduled;
                        push(&mut heap, master_free, Ev::TryDequeue(0));
                    }
                }
            }
            Ev::TryDequeue(w) => {
                if ready_q.is_empty() {
                    state[w] = WorkerState::Parked;
                } else {
                    let t_got = acquire(&mut lock_free, now, cfg.cost.dequeue(threads));
                    let task = ready_q.pop_front().expect("checked non-empty");
                    state[w] = WorkerState::Running;
                    start[task as usize] = t_got;
                    order.push(task);
                    let t_end = t_got + trace.tasks()[task as usize].duration;
                    end[task as usize] = t_end;
                    push(&mut heap, t_end, Ev::TaskDone(w, task));
                }
            }
            Ev::TaskDone(w, task) => {
                finished += 1;
                newly.clear();
                deps.finish_into(TaskId::new(task), &mut newly);
                let mut cur = now;
                for s in newly.drain(..) {
                    cur = acquire(&mut lock_free, cur, cfg.cost.release_per_succ);
                    ready_q.push_back(s.raw());
                    wake_one!(cur);
                }
                // A completed taskwait releases the parked master.
                if master_parked_at == Some(finished as u32) {
                    master_parked_at = None;
                    let next = &trace.tasks()[finished];
                    let cost = cfg.cost.per_task(next.num_deps(), threads);
                    push(&mut heap, cur + cost, Ev::MasterDone(finished as u32));
                }
                state[w] = WorkerState::Scheduled;
                push(&mut heap, cur, Ev::TryDequeue(w));
            }
        }
    }

    if finished != n {
        return Err(SwError::Stuck { finished, total: n });
    }
    Ok(ExecReport {
        engine: "nanos".into(),
        workers: w_total,
        makespan: end.iter().copied().max().unwrap_or(0),
        sequential: trace.sequential_time(),
        order,
        start,
        end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::gen;

    #[test]
    fn completes_and_validates_on_all_apps_coarse() {
        for app in gen::App::ALL {
            let bs = app.paper_block_sizes()[0];
            let tr = app.generate(bs);
            let r = run_software(&tr, SwRuntimeConfig::with_workers(4)).unwrap();
            r.validate(&tr).unwrap_or_else(|e| panic!("{app}: {e}"));
            assert!(r.speedup() > 0.5, "{app}: {}", r.speedup());
        }
    }

    #[test]
    fn speedup_bounded_by_workers() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(128));
        for w in [2, 4, 8] {
            let r = run_software(&tr, SwRuntimeConfig::with_workers(w)).unwrap();
            assert!(r.speedup() <= w as f64 + 1e-9, "w {w}: {}", r.speedup());
        }
    }

    #[test]
    fn coarse_tasks_scale_fine_tasks_collapse() {
        // The Figure 1 phenomenon: with constant problem size, decreasing
        // block size first helps then hurts.
        let s256 = run_software(
            &gen::cholesky(gen::CholeskyConfig::paper(256)),
            SwRuntimeConfig::with_workers(12),
        )
        .unwrap()
        .speedup();
        let s64 = run_software(
            &gen::cholesky(gen::CholeskyConfig::paper(64)),
            SwRuntimeConfig::with_workers(12),
        )
        .unwrap()
        .speedup();
        let s32 = run_software(
            &gen::cholesky(gen::CholeskyConfig::paper(32)),
            SwRuntimeConfig::with_workers(12),
        )
        .unwrap()
        .speedup();
        assert!(
            s64 > s256 * 0.8,
            "bs 64 ({s64}) should be near/above bs 256 ({s256})"
        );
        assert!(
            s32 < s64 * 0.6,
            "bs 32 ({s32}) must collapse vs bs 64 ({s64})"
        );
        assert!(s32 < 3.0, "bs 32 must be master-bound: {s32}");
    }

    #[test]
    fn master_overhead_bounds_throughput() {
        // With tiny tasks the makespan approaches N * per-task overhead.
        let tr = gen::synthetic(gen::Case::Case2);
        let cfg = SwRuntimeConfig::with_workers(4);
        let r = run_software(&tr, cfg).unwrap();
        let per_task = cfg.cost.per_task(1, 4);
        let lower = tr.len() as u64 * per_task;
        assert!(r.makespan >= lower, "{} < {lower}", r.makespan);
        assert!(r.makespan < lower * 2, "{} too slow", r.makespan);
    }

    #[test]
    fn deterministic() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let a = run_software(&tr, SwRuntimeConfig::with_workers(8)).unwrap();
        let b = run_software(&tr, SwRuntimeConfig::with_workers(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        let tr = gen::synthetic(gen::Case::Case1);
        assert!(matches!(
            run_software(
                &tr,
                SwRuntimeConfig {
                    workers: 0,
                    ..SwRuntimeConfig::with_workers(1)
                }
            ),
            Err(SwError::Config(_))
        ));
        let mut cfg = SwRuntimeConfig::with_workers(1);
        cfg.master_executes = false;
        assert!(matches!(run_software(&tr, cfg), Err(SwError::Config(_))));
    }

    #[test]
    fn empty_trace() {
        let tr = picos_trace::Trace::new("empty");
        let r = run_software(&tr, SwRuntimeConfig::with_workers(2)).unwrap();
        assert_eq!(r.makespan, 0);
        assert!(r.order.is_empty());
    }

    #[test]
    fn single_worker_executes_everything() {
        let tr = gen::synthetic(gen::Case::Case4);
        let r = run_software(&tr, SwRuntimeConfig::with_workers(1)).unwrap();
        r.validate(&tr).unwrap();
        assert_eq!(r.order.len(), 100);
    }
}
