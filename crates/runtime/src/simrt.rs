//! Discrete-event model of the Nanos++ software-only runtime.
//!
//! One master thread creates and submits tasks serially, paying the
//! [`NanosCostModel`] overheads that the paper's Figure 10 measures; worker
//! threads dequeue ready tasks through a serializing scheduler lock, execute
//! them for their trace duration, and release successors on completion. The
//! dependence analysis itself is the real algorithm
//! ([`crate::SoftwareDeps`]), so the schedule is always a legal topological
//! order of the dataflow graph — only its *timing* reflects the software
//! overheads.
//!
//! The model is an incremental [`SoftwareSession`]: the master pulls from
//! the session's ingest queue (starving when the client has not submitted
//! the next task yet, parking at declared taskwaits) instead of walking a
//! pre-loaded trace. [`run_software`] is the batch driver over a session.
//!
//! This is the reproduction's stand-in for the paper's Nanos++ baseline: its
//! throughput is bounded by the master (creation + submission per task) and
//! by scheduler-lock contention that grows with the thread count, which is
//! what makes it collapse for fine-grained tasks (Figures 1 and 11).

use crate::cost::NanosCostModel;
use crate::depmap::SoftwareDeps;
use crate::report::ExecReport;
use crate::session::{
    feed_trace, Admission, EventLog, Ingest, ScheduleLog, SessionConfig, SessionCore, SimEvent,
};
use picos_metrics::span::{SpanKind, SpanLog};
use picos_trace::{TaskDescriptor, TaskId, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of the software runtime.
#[derive(Debug, Clone, Copy)]
pub struct SwRuntimeConfig {
    /// Total threads, master included (the paper's "workers").
    pub workers: usize,
    /// Whether the master joins execution once all tasks are created
    /// (OmpSs behaviour at the final taskwait).
    pub master_executes: bool,
    /// Per-operation overheads.
    pub cost: NanosCostModel,
}

impl SwRuntimeConfig {
    /// `workers` threads with default costs.
    pub fn with_workers(workers: usize) -> Self {
        SwRuntimeConfig {
            workers,
            master_executes: true,
            cost: NanosCostModel::default(),
        }
    }
}

/// Errors from the software-runtime simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwError {
    /// Invalid configuration.
    Config(String),
    /// The event loop stopped with unfinished tasks (would indicate a bug
    /// in the dependence tracker).
    Stuck {
        /// Tasks completed before the stall.
        finished: usize,
        /// Total tasks.
        total: usize,
    },
}

impl std::fmt::Display for SwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwError::Config(m) => write!(f, "invalid configuration: {m}"),
            SwError::Stuck { finished, total } => {
                write!(f, "runtime stuck after {finished}/{total} tasks")
            }
        }
    }
}

impl std::error::Error for SwError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Creation + submission of task `i` completes.
    MasterDone(u32),
    /// Worker `w` looks for work.
    TryDequeue(usize),
    /// Worker `w` finished task `t`.
    TaskDone(usize, u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    Parked,
    Scheduled,
    Running,
}

/// What the master thread is doing between events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Master {
    /// A `MasterDone` event is in the heap.
    Busy,
    /// Out of ingested tasks; resumes on the next submission (or joins the
    /// workers when the session closes). Idle since `master_free`.
    Starved,
    /// Waiting at a taskwait for the gate's tasks to finish.
    Parked(u32),
}

/// The scheduler lock: serializes enqueues, dequeues and releases.
fn acquire(lock_free: &mut u64, at: u64, hold: u64) -> u64 {
    let s = (*lock_free).max(at);
    *lock_free = s + hold;
    s + hold
}

/// Mixes every timing-relevant configuration field into a fingerprint, so
/// a snapshot refuses to load into a differently-configured session.
fn cfg_fingerprint(cfg: &SwRuntimeConfig) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x100_0000_01b3)
    }
    let c = &cfg.cost;
    [
        cfg.workers as u64,
        cfg.master_executes as u64,
        c.create_base,
        c.create_per_thread,
        c.dep_base,
        c.dep_per_thread,
        c.enqueue,
        c.dequeue_base,
        c.dequeue_per_thread,
        c.release_per_succ,
    ]
    .into_iter()
    .fold(0xcbf2_9ce4_8422_2325, mix)
}

fn ev_code(ev: Ev) -> (u64, u64, u64) {
    match ev {
        Ev::MasterDone(i) => (0, i as u64, 0),
        Ev::TryDequeue(w) => (1, w as u64, 0),
        Ev::TaskDone(w, t) => (2, w as u64, t as u64),
    }
}

fn ev_from(code: u64, a: u64, b: u64) -> Result<Ev, picos_trace::SnapError> {
    match code {
        0 => Ok(Ev::MasterDone(a as u32)),
        1 => Ok(Ev::TryDequeue(a as usize)),
        2 => Ok(Ev::TaskDone(a as usize, b as u32)),
        other => Err(picos_trace::SnapError::new(format!(
            "unknown software event code {other}"
        ))),
    }
}

/// An incremental session of the Nanos++ runtime model.
///
/// Feeding a whole trace and finishing reproduces [`run_software`]
/// bit-exactly; submitting after advancing the clock models tasks the
/// program discovered late (open-loop arrival).
///
/// Cloning is a deep copy of the full dynamic state — the fork primitive
/// of the snapshot subsystem.
#[derive(Debug, Clone)]
pub struct SoftwareSession {
    cfg: SwRuntimeConfig,
    deps: SoftwareDeps,
    heap: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    seq: u64,
    ready_q: VecDeque<u32>,
    state: Vec<WorkerState>,
    lock_free: u64,
    /// Admitted tasks, dense ids (the master's creation queue).
    tasks: Vec<TaskDescriptor>,
    /// Arrival cycle of each admitted task (the session clock at submit):
    /// the master cannot create a task before the program discovered it.
    arrivals: Vec<u64>,
    /// Next task the master will create.
    created: usize,
    master: Master,
    /// Time the master went idle (meaningful when starved or parked).
    master_free: u64,
    master_done: bool,
    closed: bool,
    now: u64,
    ingest: Ingest,
    log: ScheduleLog,
    events: EventLog,
    /// Requested telemetry window; the software model's only occupancy is
    /// its worker pool, so its timeline is derived from the finished
    /// schedule at `finish` time.
    timeline_window: Option<u64>,
    /// Lifecycle span recorder, attached by [`SessionConfig::trace_spans`].
    /// Observation-only: every record site is one branch when absent.
    spans: Option<SpanLog>,
    /// Scratch for [`SoftwareDeps::finish_into`].
    newly: Vec<TaskId>,
}

impl SoftwareSession {
    /// Opens a session.
    ///
    /// # Errors
    ///
    /// Returns [`SwError::Config`] for a zero worker count, or one worker
    /// with `master_executes` disabled.
    pub fn new(cfg: SwRuntimeConfig, session: SessionConfig) -> Result<Self, SwError> {
        if cfg.workers == 0 {
            return Err(SwError::Config("need at least one thread".into()));
        }
        if cfg.workers == 1 && !cfg.master_executes {
            return Err(SwError::Config(
                "a single thread must execute tasks (enable master_executes)".into(),
            ));
        }
        session.validate().map_err(SwError::Config)?;
        Ok(SoftwareSession {
            cfg,
            deps: SoftwareDeps::new(0),
            heap: BinaryHeap::new(),
            seq: 0,
            ready_q: VecDeque::new(),
            state: vec![WorkerState::Parked; cfg.workers],
            lock_free: 0,
            tasks: Vec::new(),
            arrivals: Vec::new(),
            created: 0,
            master: Master::Starved,
            master_free: 0,
            master_done: false,
            closed: false,
            now: 0,
            ingest: Ingest::new(session.window),
            log: ScheduleLog::default(),
            events: EventLog::new(session.collect_events),
            timeline_window: session.timeline_window,
            spans: session.trace_spans.then(SpanLog::new),
            newly: Vec::new(),
        })
    }

    /// The telemetry window this session was opened with, if any.
    pub fn timeline_window(&self) -> Option<u64> {
        self.timeline_window
    }

    fn push_ev(&mut self, t: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse((t, self.seq, ev)));
    }

    /// Wakes one parked worker for a task enqueued at time `at` (worker 0
    /// is the master and only executes once creation is done).
    fn wake_one(&mut self, at: u64) {
        let master_done = self.master_done;
        if let Some(w) = self
            .state
            .iter()
            .enumerate()
            .filter(|&(w, s)| *s == WorkerState::Parked && (w != 0 || master_done))
            .map(|(w, _)| w)
            .next()
        {
            self.state[w] = WorkerState::Scheduled;
            self.push_ev(at, Ev::TryDequeue(w));
        }
    }

    /// Moves the master to its next action, idle since `at`: create the
    /// next ingested task, park at a gate, starve, or — once the session
    /// is closed and drained — finish creation and join the workers.
    fn master_try_next(&mut self, at: u64) {
        if self.created < self.ingest.admitted {
            let gate = self.ingest.gates[self.created];
            if gate as usize > self.ingest.finished {
                // taskwait: the master blocks until every earlier task
                // finished (paper, Section II-A).
                self.master = Master::Parked(gate);
                self.master_free = at;
            } else {
                let task = &self.tasks[self.created];
                let cost = self.cfg.cost.per_task(task.num_deps(), self.cfg.workers);
                let t0 = at.max(self.arrivals[self.created]);
                self.push_ev(t0 + cost, Ev::MasterDone(self.created as u32));
                self.master = Master::Busy;
            }
        } else {
            if self.closed && !self.master_done {
                self.master_done = true;
                if self.cfg.master_executes && self.ingest.admitted > 0 {
                    self.state[0] = WorkerState::Scheduled;
                    self.push_ev(at, Ev::TryDequeue(0));
                }
            }
            self.master = Master::Starved;
            self.master_free = at;
        }
    }

    /// Pops and handles the earliest event. Returns `false` on an empty
    /// heap.
    fn fire(&mut self) -> bool {
        let Some(Reverse((now, _, ev))) = self.heap.pop() else {
            return false;
        };
        self.now = now;
        match ev {
            Ev::MasterDone(i) => {
                let is_ready = self.deps.submit(&self.tasks[i as usize]);
                if let Some(log) = &mut self.spans {
                    log.record(SpanKind::DepsRegistered, now, 0, i, 0);
                }
                let mut master_free = now;
                if is_ready {
                    let t_enq = acquire(&mut self.lock_free, now, self.cfg.cost.enqueue);
                    self.ready_q.push_back(i);
                    if let Some(log) = &mut self.spans {
                        log.record(SpanKind::Ready, t_enq, 0, i, 0);
                    }
                    self.wake_one(t_enq);
                    master_free = t_enq;
                }
                self.created = i as usize + 1;
                self.master_try_next(master_free);
            }
            Ev::TryDequeue(w) => {
                if self.ready_q.is_empty() {
                    self.state[w] = WorkerState::Parked;
                } else {
                    let t_got = acquire(
                        &mut self.lock_free,
                        now,
                        self.cfg.cost.dequeue(self.cfg.workers),
                    );
                    let task = self.ready_q.pop_front().expect("checked non-empty");
                    self.state[w] = WorkerState::Running;
                    let dur = self.tasks[task as usize].duration;
                    let t_end = self.log.begin(task, t_got, dur);
                    self.events.push(SimEvent::TaskStarted { task, at: t_got });
                    if let Some(log) = &mut self.spans {
                        log.record(SpanKind::Started, t_got, 0, task, w as u32);
                    }
                    self.push_ev(t_end, Ev::TaskDone(w, task));
                }
            }
            Ev::TaskDone(w, task) => {
                self.ingest.finished += 1;
                self.events.push(SimEvent::TaskFinished { task, at: now });
                if let Some(log) = &mut self.spans {
                    log.record(SpanKind::Finished, now, 0, task, w as u32);
                }
                let mut newly = std::mem::take(&mut self.newly);
                newly.clear();
                self.deps.finish_into(TaskId::new(task), &mut newly);
                let mut cur = now;
                for s in newly.drain(..) {
                    cur = acquire(&mut self.lock_free, cur, self.cfg.cost.release_per_succ);
                    self.ready_q.push_back(s.raw());
                    if let Some(log) = &mut self.spans {
                        log.record(SpanKind::Ready, cur, 0, s.raw(), 0);
                    }
                    self.wake_one(cur);
                }
                self.newly = newly;
                // A completed taskwait releases the parked master.
                if self.master == Master::Parked(self.ingest.finished as u32) {
                    self.master_try_next(cur);
                }
                self.state[w] = WorkerState::Scheduled;
                self.push_ev(cur, Ev::TryDequeue(w));
            }
        }
        true
    }

    /// Handles every event at or before the current time; returns whether
    /// anything fired.
    fn settle(&mut self) -> bool {
        let mut fired = false;
        while matches!(self.heap.peek(), Some(&Reverse((t, _, _))) if t <= self.now) {
            self.fire();
            fired = true;
        }
        fired
    }

    /// Whether the next submission cannot be ingested right now.
    fn ingest_blocked(&self) -> bool {
        self.ingest.saturated() || matches!(self.master, Master::Parked(_))
    }

    /// Serializes the full dynamic state. Restore by opening a session
    /// with the same configuration and calling
    /// [`SoftwareSession::load_state`].
    pub fn save_state(&self) -> picos_trace::Value {
        use picos_trace::snap::Enc;
        let mut heap: Vec<(u64, u64, Ev)> = self.heap.iter().map(|r| r.0).collect();
        heap.sort_unstable();
        let mut e = Enc::new();
        e.u64(cfg_fingerprint(&self.cfg))
            .opt_u64(self.timeline_window)
            .bool(self.spans.is_some())
            .val(self.deps.save_state())
            .seq(heap, |e, (t, seq, ev)| {
                let (code, a, b) = ev_code(ev);
                e.u64(t).u64(seq).u64(code).u64(a).u64(b);
            })
            .u64(self.seq)
            .u32s(self.ready_q.iter().copied())
            .u64s(self.state.iter().map(|s| *s as u64))
            .u64(self.lock_free)
            .seq(self.tasks.iter(), crate::snap::enc_task)
            .u64s(self.arrivals.iter().copied())
            .usize(self.created);
        match self.master {
            Master::Busy => e.u64(0).u32(0),
            Master::Starved => e.u64(1).u32(0),
            Master::Parked(g) => e.u64(2).u32(g),
        };
        e.u64(self.master_free)
            .bool(self.master_done)
            .bool(self.closed)
            .u64(self.now)
            .val(self.ingest.save_state())
            .val(self.log.save_state())
            .val(self.events.save_state())
            .val(match &self.spans {
                Some(s) => s.save_state(),
                None => picos_trace::Value::Null,
            });
        e.done()
    }

    /// Overwrites the dynamic state from [`SoftwareSession::save_state`]
    /// output.
    ///
    /// # Errors
    ///
    /// Returns [`picos_trace::SnapError`] on a malformed record or a
    /// configuration mismatch (worker count, cost model, telemetry
    /// attachments, in-flight window).
    pub fn load_state(&mut self, v: &picos_trace::Value) -> Result<(), picos_trace::SnapError> {
        use picos_trace::snap::{guard, Dec};
        let mut d = Dec::new(v, "software session")?;
        guard("nanos config", d.u64()?, cfg_fingerprint(&self.cfg))?;
        let window = d.opt_u64()?;
        if window != self.timeline_window {
            return Err(picos_trace::SnapError::new(
                "software session: timeline window mismatch",
            ));
        }
        guard(
            "nanos spans attached",
            d.bool()? as u64,
            self.spans.is_some() as u64,
        )?;
        let deps = d.val()?;
        let heap = d.seq(|d| {
            let (t, seq) = (d.u64()?, d.u64()?);
            let (code, a, b) = (d.u64()?, d.u64()?, d.u64()?);
            Ok((t, seq, ev_from(code, a, b)?))
        })?;
        let seq = d.u64()?;
        let ready_q = d.u32s()?;
        let state = d
            .u64s()?
            .into_iter()
            .map(|c| match c {
                0 => Ok(WorkerState::Parked),
                1 => Ok(WorkerState::Scheduled),
                2 => Ok(WorkerState::Running),
                other => Err(picos_trace::SnapError::new(format!(
                    "unknown worker state code {other}"
                ))),
            })
            .collect::<Result<Vec<_>, _>>()?;
        if state.len() != self.cfg.workers {
            return Err(picos_trace::SnapError::new(
                "software session: worker table length mismatch",
            ));
        }
        let lock_free = d.u64()?;
        let tasks = d.seq(crate::snap::dec_task)?;
        let arrivals = d.u64s()?;
        let created = d.usize()?;
        let master = match (d.u64()?, d.u32()?) {
            (0, _) => Master::Busy,
            (1, _) => Master::Starved,
            (2, g) => Master::Parked(g),
            (other, _) => {
                return Err(picos_trace::SnapError::new(format!(
                    "unknown master state code {other}"
                )))
            }
        };
        let master_free = d.u64()?;
        let master_done = d.bool()?;
        let closed = d.bool()?;
        let now = d.u64()?;
        self.deps.load_state(deps)?;
        self.ingest.load_state(d.val()?)?;
        self.log.load_state(d.val()?)?;
        self.events.load_state(d.val()?)?;
        self.spans = match d.val()? {
            picos_trace::Value::Null => None,
            v => Some(SpanLog::load_state(v)?),
        };
        self.heap = heap.into_iter().map(Reverse).collect();
        self.seq = seq;
        self.ready_q = ready_q.into();
        self.state = state;
        self.lock_free = lock_free;
        self.tasks = tasks;
        self.arrivals = arrivals;
        self.created = created;
        self.master = master;
        self.master_free = master_free;
        self.master_done = master_done;
        self.closed = closed;
        self.now = now;
        Ok(())
    }

    /// Closes the session, runs it to quiescence and returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`SwError::Stuck`] if tasks remain unfinished (an engine
    /// bug).
    pub fn into_report(self) -> Result<ExecReport, SwError> {
        self.into_output().map(|(r, _)| r)
    }

    /// Like [`SoftwareSession::into_report`], and also returns the span
    /// log (recording order) when the session was opened with
    /// [`SessionConfig::trace_spans`].
    ///
    /// # Errors
    ///
    /// See [`SoftwareSession::into_report`].
    pub fn into_output(mut self) -> Result<(ExecReport, Option<SpanLog>), SwError> {
        self.closed = true;
        if self.master == Master::Starved {
            let at = self.master_free.max(self.now);
            self.master_try_next(at);
        }
        while self.fire() {}
        if self.ingest.finished != self.ingest.admitted {
            return Err(SwError::Stuck {
                finished: self.ingest.finished,
                total: self.ingest.admitted,
            });
        }
        let spans = self.spans.take();
        Ok((self.log.into_report("nanos", self.cfg.workers), spans))
    }
}

impl SessionCore for SoftwareSession {
    fn submit(&mut self, task: &TaskDescriptor) -> Admission {
        if self.ingest.saturated() {
            return Admission::Backpressured;
        }
        let id = self.ingest.admit();
        self.arrivals.push(self.now);
        self.log.admit(task.duration);
        if let Some(log) = &mut self.spans {
            log.record(SpanKind::Submitted, self.now, 0, id, 0);
        }
        let mut t = task.clone();
        t.id = TaskId::new(id);
        self.tasks.push(t);
        if self.master == Master::Starved {
            self.master_try_next(self.master_free);
        }
        Admission::Accepted
    }

    fn barrier(&mut self) {
        self.ingest.barrier();
    }

    fn advance_to(&mut self, cycle: u64) {
        while matches!(self.heap.peek(), Some(&Reverse((t, _, _))) if t <= cycle) {
            self.fire();
        }
        self.now = self.now.max(cycle);
    }

    fn step(&mut self) -> bool {
        // Settling same-time events is progress in itself: it can retire a
        // task and free the in-flight window, in which case the session is
        // no longer blocked and the caller must retry its submission
        // rather than read `false` as a terminal stall.
        let settled = self.settle();
        if self.ingest_blocked() {
            self.fire() || settled
        } else {
            settled
        }
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn in_flight(&self) -> usize {
        self.ingest.in_flight()
    }

    fn drain_events(&mut self, out: &mut Vec<SimEvent>) {
        self.events.drain_into(out);
    }

    fn reserve(&mut self, additional: usize) {
        self.ingest.reserve(additional);
        self.log.reserve(additional);
        self.tasks.reserve(additional);
        self.arrivals.reserve(additional);
    }
}

/// Runs a trace on the software runtime model: opens a
/// [`SoftwareSession`], feeds the whole trace and finishes it.
///
/// # Errors
///
/// Returns [`SwError::Config`] for a zero worker count (or one worker with
/// `master_executes` disabled) and [`SwError::Stuck`] if the simulation
/// cannot finish (which would indicate an internal bug).
pub fn run_software(trace: &Trace, cfg: SwRuntimeConfig) -> Result<ExecReport, SwError> {
    let mut s = SoftwareSession::new(cfg, SessionConfig::batch())?;
    feed_trace(&mut s, trace).expect("unbounded window cannot stall");
    s.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picos_trace::gen;

    #[test]
    fn completes_and_validates_on_all_apps_coarse() {
        for app in gen::App::ALL {
            let bs = app.paper_block_sizes()[0];
            let tr = app.generate(bs);
            let r = run_software(&tr, SwRuntimeConfig::with_workers(4)).unwrap();
            r.validate(&tr).unwrap_or_else(|e| panic!("{app}: {e}"));
            assert!(r.speedup() > 0.5, "{app}: {}", r.speedup());
        }
    }

    #[test]
    fn speedup_bounded_by_workers() {
        let tr = gen::cholesky(gen::CholeskyConfig::paper(128));
        for w in [2, 4, 8] {
            let r = run_software(&tr, SwRuntimeConfig::with_workers(w)).unwrap();
            assert!(r.speedup() <= w as f64 + 1e-9, "w {w}: {}", r.speedup());
        }
    }

    #[test]
    fn coarse_tasks_scale_fine_tasks_collapse() {
        // The Figure 1 phenomenon: with constant problem size, decreasing
        // block size first helps then hurts.
        let s256 = run_software(
            &gen::cholesky(gen::CholeskyConfig::paper(256)),
            SwRuntimeConfig::with_workers(12),
        )
        .unwrap()
        .speedup();
        let s64 = run_software(
            &gen::cholesky(gen::CholeskyConfig::paper(64)),
            SwRuntimeConfig::with_workers(12),
        )
        .unwrap()
        .speedup();
        let s32 = run_software(
            &gen::cholesky(gen::CholeskyConfig::paper(32)),
            SwRuntimeConfig::with_workers(12),
        )
        .unwrap()
        .speedup();
        assert!(
            s64 > s256 * 0.8,
            "bs 64 ({s64}) should be near/above bs 256 ({s256})"
        );
        assert!(
            s32 < s64 * 0.6,
            "bs 32 ({s32}) must collapse vs bs 64 ({s64})"
        );
        assert!(s32 < 3.0, "bs 32 must be master-bound: {s32}");
    }

    #[test]
    fn master_overhead_bounds_throughput() {
        // With tiny tasks the makespan approaches N * per-task overhead.
        let tr = gen::synthetic(gen::Case::Case2);
        let cfg = SwRuntimeConfig::with_workers(4);
        let r = run_software(&tr, cfg).unwrap();
        let per_task = cfg.cost.per_task(1, 4);
        let lower = tr.len() as u64 * per_task;
        assert!(r.makespan >= lower, "{} < {lower}", r.makespan);
        assert!(r.makespan < lower * 2, "{} too slow", r.makespan);
    }

    #[test]
    fn deterministic() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let a = run_software(&tr, SwRuntimeConfig::with_workers(8)).unwrap();
        let b = run_software(&tr, SwRuntimeConfig::with_workers(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        let tr = gen::synthetic(gen::Case::Case1);
        assert!(matches!(
            run_software(
                &tr,
                SwRuntimeConfig {
                    workers: 0,
                    ..SwRuntimeConfig::with_workers(1)
                }
            ),
            Err(SwError::Config(_))
        ));
        let mut cfg = SwRuntimeConfig::with_workers(1);
        cfg.master_executes = false;
        assert!(matches!(run_software(&tr, cfg), Err(SwError::Config(_))));
    }

    #[test]
    fn empty_trace() {
        let tr = picos_trace::Trace::new("empty");
        let r = run_software(&tr, SwRuntimeConfig::with_workers(2)).unwrap();
        assert_eq!(r.makespan, 0);
        assert!(r.order.is_empty());
    }

    #[test]
    fn single_worker_executes_everything() {
        let tr = gen::synthetic(gen::Case::Case4);
        let r = run_software(&tr, SwRuntimeConfig::with_workers(1)).unwrap();
        r.validate(&tr).unwrap();
        assert_eq!(r.order.len(), 100);
    }

    #[test]
    fn session_matches_batch_run_one_task_at_a_time() {
        let tr = gen::synthetic(gen::Case::Case3);
        let cfg = SwRuntimeConfig::with_workers(6);
        let batch = run_software(&tr, cfg).unwrap();
        let mut s = SoftwareSession::new(cfg, SessionConfig::batch()).unwrap();
        feed_trace(&mut s, &tr).unwrap();
        assert_eq!(s.in_flight(), tr.len());
        let streamed = s.into_report().unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn step_reports_settle_progress_that_frees_the_window() {
        // Regression: a TaskDone can share its timestamp with a MasterDone
        // that sorts first in the heap. The step() that settles the
        // TaskDone frees the window and must return true — callers treat
        // false as a terminal stall.
        let mut tr = picos_trace::Trace::new("same-time");
        for _ in 0..3 {
            tr.push(picos_trace::KernelClass::GENERIC, [], 6_400);
        }
        let mut s =
            SoftwareSession::new(SwRuntimeConfig::with_workers(4), SessionConfig::windowed(2))
                .unwrap();
        feed_trace(&mut s, &tr).expect("no spurious FeedStall");
        let r = s.into_report().unwrap();
        assert_eq!(r.order.len(), 3);
        r.validate(&tr).unwrap();
    }

    /// Feeds tasks `range` of the trace (with any taskwait gates at their
    /// recorded positions), stepping through backpressure.
    fn feed_range(s: &mut SoftwareSession, tr: &picos_trace::Trace, range: std::ops::Range<usize>) {
        for i in range {
            if tr.barriers().contains(&(i as u32)) {
                s.barrier();
            }
            while s.submit(&tr.tasks()[i]) == Admission::Backpressured {
                assert!(s.step(), "backpressured session must progress");
            }
        }
    }

    #[test]
    fn snapshot_restore_equals_continuous() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let scfg = SessionConfig {
            trace_spans: true,
            collect_events: true,
            ..SessionConfig::windowed(16)
        };
        let cfg = SwRuntimeConfig::with_workers(4);
        for pause in [0usize, 9, 33] {
            let mut cont = SoftwareSession::new(cfg, scfg).unwrap();
            let mut live = SoftwareSession::new(cfg, scfg).unwrap();
            feed_range(&mut cont, &tr, 0..pause);
            feed_range(&mut live, &tr, 0..pause);
            let text = picos_trace::snap::value_to_json(&live.save_state());
            let v = picos_trace::snap::value_from_json(&text).unwrap();
            let mut restored = SoftwareSession::new(cfg, scfg).unwrap();
            restored.load_state(&v).unwrap();
            assert_eq!(restored.now(), live.now(), "pause {pause}");
            assert_eq!(restored.in_flight(), live.in_flight(), "pause {pause}");
            feed_range(&mut cont, &tr, pause..tr.len());
            feed_range(&mut restored, &tr, pause..tr.len());
            let mut ec = Vec::new();
            let mut er = Vec::new();
            cont.drain_events(&mut ec);
            restored.drain_events(&mut er);
            assert_eq!(ec, er, "pause {pause}: undrained events diverged");
            let (rc, sc) = cont.into_output().unwrap();
            let (rr, sr) = restored.into_output().unwrap();
            assert_eq!(rc, rr, "pause {pause}: report diverged");
            assert_eq!(sc, sr, "pause {pause}: span log diverged");
        }
    }

    #[test]
    fn fork_is_an_independent_replica() {
        let tr = gen::sparselu(gen::SparseLuConfig::paper(128));
        let cfg = SwRuntimeConfig::with_workers(4);
        let mut live = SoftwareSession::new(cfg, SessionConfig::windowed(8)).unwrap();
        feed_range(&mut live, &tr, 0..20);
        let mut fork = live.clone();
        let before_now = live.now();
        feed_range(&mut fork, &tr, 20..tr.len());
        let rf = fork.into_report().unwrap();
        rf.validate(&tr).unwrap();
        assert_eq!(live.now(), before_now, "fork must not disturb the original");
        feed_range(&mut live, &tr, 20..tr.len());
        assert_eq!(live.into_report().unwrap(), rf);
    }

    #[test]
    fn snapshot_rejects_config_mismatch() {
        let mut s =
            SoftwareSession::new(SwRuntimeConfig::with_workers(4), SessionConfig::batch()).unwrap();
        let snap = s.save_state();
        let mut other =
            SoftwareSession::new(SwRuntimeConfig::with_workers(2), SessionConfig::batch()).unwrap();
        let err = other.load_state(&snap).unwrap_err();
        assert!(err.to_string().contains("nanos config"), "{err}");
        s.load_state(&snap).unwrap();
    }

    #[test]
    fn windowed_session_backpressures_and_completes() {
        let tr = gen::synthetic(gen::Case::Case1);
        let mut s =
            SoftwareSession::new(SwRuntimeConfig::with_workers(4), SessionConfig::windowed(3))
                .unwrap();
        let mut retries = 0;
        for t in tr.iter() {
            loop {
                match s.submit(t) {
                    Admission::Accepted => break,
                    Admission::Backpressured => {
                        retries += 1;
                        assert!(s.step(), "blocked session must drain");
                    }
                }
            }
        }
        assert!(retries > 0, "a 3-task window must backpressure");
        let r = s.into_report().unwrap();
        r.validate(&tr).unwrap();
    }
}
