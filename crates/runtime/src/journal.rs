//! Crash recovery for streaming sessions: record the accepted input
//! stream, replay it into a fresh session.
//!
//! [`JournaledSession`] wraps any [`SessionCore`] and appends every
//! *accepted* input operation — admitted submissions, barriers and
//! `advance_to` assertions — to a [`SessionJournal`]. Because every
//! engine's schedule is a deterministic function of that stream (pinned by
//! the session-conformance suite: any submit/step interleaving is
//! bit-exact with the batch run), [`replay_journal`] rebuilds a crashed
//! session's state cycle-for-cycle in a new session, which then continues
//! accepting live input.
//!
//! `step`, `now`, `in_flight` and `drain_events` are observational or
//! forced (a `step` only moves the clock when the session is
//! ingest-blocked, where the replay driver must make the same advance to
//! drain its own backpressure) and are deliberately not recorded.

use crate::session::{Admission, FeedStall, SessionCore, SimEvent};
use picos_trace::{JournalOp, SessionJournal, TaskDescriptor};

/// A [`SessionCore`] wrapper that journals the accepted input stream.
///
/// # Examples
///
/// ```
/// use picos_runtime::{
///     replay_journal, JournaledSession, PerfectSession, SessionConfig, SessionCore,
/// };
/// use picos_trace::{Dependence, KernelClass, TaskDescriptor, TaskId};
///
/// let session = PerfectSession::new(2, SessionConfig::batch()).unwrap();
/// let mut live = JournaledSession::new(session);
/// let t = TaskDescriptor::new(TaskId::new(0), KernelClass::GENERIC, [Dependence::inout(64)], 9);
/// live.submit(&t);
/// live.barrier();
/// let (_, journal) = live.into_parts();
///
/// // ... the original process dies; recover from the journal:
/// let mut recovered = PerfectSession::new(2, SessionConfig::batch()).unwrap();
/// replay_journal(&mut recovered, &journal).unwrap();
/// assert_eq!(recovered.in_flight(), 1);
/// ```
#[derive(Debug)]
pub struct JournaledSession<S> {
    inner: S,
    journal: SessionJournal,
}

impl<S: SessionCore> JournaledSession<S> {
    /// Wraps a session, journaling from now on (the session should be
    /// freshly opened — ops accepted before wrapping are not in the
    /// journal).
    pub fn new(inner: S) -> Self {
        JournaledSession {
            inner,
            journal: SessionJournal::new(),
        }
    }

    /// Resumes journaling over a recovered session: the wrapper adopts
    /// `journal` (typically the snapshot-time tail kept by a checkpoint)
    /// and appends new ops after it, so the persisted journal stays the
    /// exact op suffix since the last snapshot.
    pub fn from_parts(inner: S, journal: SessionJournal) -> Self {
        JournaledSession { inner, journal }
    }

    /// The journal recorded so far (persist with
    /// [`SessionJournal::to_json`] as often as the crash-recovery window
    /// requires).
    pub fn journal(&self) -> &SessionJournal {
        &self.journal
    }

    /// Drops every recorded op up to (excluding) `from`, keeping the tail.
    /// A checkpointer calls this right after persisting a snapshot taken
    /// at journal cursor `from`: recovery becomes snapshot + tail replay,
    /// and the journal stops growing without bound.
    pub fn compact(&mut self, from: usize) {
        self.journal = self.journal.tail(from);
    }

    /// Read access to the wrapped session.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped session, **bypassing the journal**.
    /// For state surgery that must not be recorded — restoring a snapshot
    /// into a recovered session before replaying the journal tail. Do not
    /// feed input through this: unjournaled ops are unrecoverable.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps into the session and its journal (for finishing the run:
    /// the inner session owns the report).
    pub fn into_parts(self) -> (S, SessionJournal) {
        (self.inner, self.journal)
    }
}

impl<S: SessionCore> SessionCore for JournaledSession<S> {
    fn submit(&mut self, task: &TaskDescriptor) -> Admission {
        let adm = self.inner.submit(task);
        if adm == Admission::Accepted {
            self.journal.record_submit(task);
        }
        adm
    }

    fn barrier(&mut self) {
        self.journal.record_barrier();
        self.inner.barrier();
    }

    fn advance_to(&mut self, cycle: u64) {
        self.journal.record_advance_to(cycle);
        self.inner.advance_to(cycle);
    }

    fn step(&mut self) -> bool {
        self.inner.step()
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    fn drain_events(&mut self, out: &mut Vec<SimEvent>) {
        self.inner.drain_events(out)
    }

    fn reserve(&mut self, additional: usize) {
        self.journal.reserve(additional);
        self.inner.reserve(additional)
    }
}

/// Replays a journal into a fresh session, rebuilding the recorded input
/// stream op for op. Backpressured submissions are drained with
/// [`SessionCore::step`], exactly like the batch feed loop — the journal
/// records only accepted offers, so the replaying driver re-derives the
/// same forced clock advances the original client made.
///
/// After replay the session is bit-exact with the original at the point
/// the journal was cut and accepts further live input.
///
/// # Errors
///
/// Returns [`FeedStall`] if a submission stays backpressured while the
/// session cannot progress. A journal recorded from a working session
/// replays into an identically configured session without stalling; a
/// stall means the replay target was opened with a smaller window than
/// the recorder.
pub fn replay_journal<S: SessionCore + ?Sized>(
    session: &mut S,
    journal: &SessionJournal,
) -> Result<(), FeedStall> {
    replay_journal_tail(session, journal, 0)
}

/// Replays the journal suffix starting at op index `from` — the
/// checkpointed-recovery primitive: restore a session from a snapshot
/// taken at journal cursor `from`, then replay only the tail recorded
/// after it. `replay_journal` is the `from == 0` special case (recovery
/// without a snapshot). Indexes past the end replay nothing.
///
/// # Errors
///
/// Returns [`FeedStall`] under the same conditions as [`replay_journal`];
/// the reported task index counts submissions within the tail.
pub fn replay_journal_tail<S: SessionCore + ?Sized>(
    session: &mut S,
    journal: &SessionJournal,
    from: usize,
) -> Result<(), FeedStall> {
    let ops = &journal.ops()[from.min(journal.len())..];
    session.reserve(
        ops.iter()
            .filter(|op| matches!(op, JournalOp::Submit(_)))
            .count(),
    );
    let mut submitted: u32 = 0;
    for op in ops {
        match op {
            JournalOp::Submit(task) => {
                loop {
                    match session.submit(task) {
                        Admission::Accepted => break,
                        Admission::Backpressured => {
                            if !session.step() {
                                return Err(FeedStall { task: submitted });
                            }
                        }
                    }
                }
                submitted += 1;
            }
            JournalOp::Barrier => session.barrier(),
            JournalOp::AdvanceTo(cycle) => session.advance_to(*cycle),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfect::PerfectSession;
    use crate::session::{feed_trace, SessionConfig};
    use picos_trace::gen;

    fn perfect(workers: usize, cfg: SessionConfig) -> PerfectSession {
        PerfectSession::new(workers, cfg).unwrap()
    }

    #[test]
    fn journaled_feed_replays_bit_exact() {
        let trace = gen::stream(gen::StreamConfig::heavy(60));
        let mut live = JournaledSession::new(perfect(4, SessionConfig::batch()));
        feed_trace(&mut live, &trace).unwrap();
        let (live, journal) = live.into_parts();
        let original = live.into_report();

        assert_eq!(journal.submitted(), trace.len());
        let mut recovered = perfect(4, SessionConfig::batch());
        replay_journal(&mut recovered, &journal).unwrap();
        assert_eq!(recovered.into_report(), original);
    }

    #[test]
    fn backpressured_offers_are_recorded_once_and_replay_exactly() {
        let trace = gen::stream(gen::StreamConfig::heavy(40));
        let mut live = JournaledSession::new(perfect(2, SessionConfig::windowed(3)));
        feed_trace(&mut live, &trace).unwrap();
        let (live, journal) = live.into_parts();
        let original = live.into_report();
        // Every task appears exactly once despite backpressure retries.
        assert_eq!(journal.submitted(), trace.len());

        let mut recovered = perfect(2, SessionConfig::windowed(3));
        replay_journal(&mut recovered, &journal).unwrap();
        assert_eq!(recovered.into_report(), original);
    }

    /// Rebuilds the first `n` ops of a journal as a standalone journal
    /// (the state a checkpointer would have replayed into its snapshot).
    fn prefix(journal: &SessionJournal, n: usize) -> SessionJournal {
        let mut p = SessionJournal::new();
        for op in &journal.ops()[..n] {
            match op {
                JournalOp::Submit(t) => p.record_submit(t),
                JournalOp::Barrier => p.record_barrier(),
                JournalOp::AdvanceTo(c) => p.record_advance_to(*c),
            }
        }
        p
    }

    #[test]
    fn checkpoint_plus_tail_replay_equals_full_replay() {
        let trace = gen::stream(gen::StreamConfig::heavy(50));
        let mut live = JournaledSession::new(perfect(3, SessionConfig::windowed(8)));
        feed_trace(&mut live, &trace).unwrap();
        let (live, journal) = live.into_parts();
        let original = live.into_report();

        for cut in [0, 1, journal.len() / 2, journal.len()] {
            // The checkpoint: state at op cursor `cut`, through JSON.
            let mut pre = perfect(3, SessionConfig::windowed(8));
            replay_journal(&mut pre, &prefix(&journal, cut)).unwrap();
            let text = picos_trace::snap::value_to_json(&pre.save_state());
            let snap = picos_trace::snap::value_from_json(&text).unwrap();
            // The recovery: snapshot + tail replay only.
            let mut rec = perfect(3, SessionConfig::windowed(8));
            rec.load_state(&snap).unwrap();
            replay_journal_tail(&mut rec, &journal, cut).unwrap();
            assert_eq!(rec.into_report(), original, "cut {cut}");
        }
    }

    #[test]
    fn compact_keeps_only_the_tail() {
        let trace = gen::stream(gen::StreamConfig::heavy(10));
        let mut live = JournaledSession::new(perfect(2, SessionConfig::batch()));
        feed_trace(&mut live, &trace).unwrap();
        let cursor = live.journal().len();
        live.compact(cursor);
        assert!(live.journal().is_empty(), "checkpoint consumed the journal");
        let extra = trace.tasks()[0].clone();
        live.submit(&extra);
        assert_eq!(live.journal().len(), 1, "tail keeps post-checkpoint ops");
        // Past-the-end compaction is a no-op empty tail, not a panic.
        live.compact(99);
        assert!(live.journal().is_empty());
    }

    #[test]
    fn journal_roundtrips_through_json_and_still_replays() {
        let trace = gen::stream(gen::StreamConfig::heavy(30));
        let mut live = JournaledSession::new(perfect(4, SessionConfig::batch()));
        feed_trace(&mut live, &trace).unwrap();
        live.advance_to(10_000);
        let (live, journal) = live.into_parts();
        let original = live.into_report();

        let journal = picos_trace::SessionJournal::from_json(&journal.to_json()).unwrap();
        let mut recovered = perfect(4, SessionConfig::batch());
        replay_journal(&mut recovered, &journal).unwrap();
        assert_eq!(recovered.into_report(), original);
    }
}
