//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this crate
//! (vendored in-tree as `crates/criterion-shim`, package name `criterion`)
//! provides just the API surface the workspace benches use: benchmark
//! groups, [`BenchmarkId`], [`Throughput`], `b.iter(..)`, and the
//! `criterion_group!` / `criterion_main!` macros. It measures median
//! wall-clock time over a fixed sampling window and prints one line per
//! benchmark — no statistics, plots or baselines.
//!
//! Environment knobs: `CRITERION_SHIM_SAMPLE_MS` (per-bench sampling window,
//! default 300 ms), `CRITERION_SHIM_WARMUP_MS` (default 100 ms).

use std::time::{Duration, Instant};

/// Identifier of one benchmark inside a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Throughput annotation: scales the report to elements or bytes per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly for the sampling window and records the timing.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warmup = env_ms("CRITERION_SHIM_WARMUP_MS", 100);
        let sample = env_ms("CRITERION_SHIM_SAMPLE_MS", 300);
        let start = Instant::now();
        while start.elapsed() < warmup {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < sample || iters == 0 {
            std::hint::black_box(f());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }
}

fn env_ms(key: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    /// Benchmarks `f` without an input parameter.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    /// Ends the group (printing is per-benchmark; this is a no-op).
    pub fn finish(self) {}

    fn report(&self, bench: &str, b: &Bencher) {
        let per = b.per_iter();
        let mut line = format!(
            "{}/{bench}: {:>12.3} µs/iter ({} iters)",
            self.name,
            per.as_secs_f64() * 1e6,
            b.iters
        );
        if let Some(t) = self.throughput {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if per > Duration::ZERO {
                line.push_str(&format!(
                    "  {:>12.0} {unit}/s",
                    n as f64 / per.as_secs_f64()
                ));
            }
        }
        println!("{line}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            throughput: None,
            _criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
