//! Sweep-harness acceptance tests: the full paper grid — every application
//! at two block sizes crossed with every backend family — completes
//! through the parallel harness, and parallel execution is byte-identical
//! to serial execution regardless of thread count.

use picos_repro::prelude::*;
use picos_trace::gen::App;
use std::sync::Arc;

/// `App::ALL` × 2 block sizes × {perfect, nanos, all HIL modes}.
fn paper_grid() -> Sweep {
    let workloads = App::ALL.into_iter().flat_map(|app| {
        let sizes = app.paper_block_sizes();
        [sizes[0], sizes[1]]
            .into_iter()
            .map(move |bs| Workload::from_app(app, bs))
    });
    Sweep::new(workloads)
        .workers([8])
        .backends(BackendSpec::ALL)
}

#[test]
fn full_grid_completes_in_parallel_and_matches_serial() {
    let parallel = paper_grid().run(); // default: available parallelism
    assert_eq!(
        parallel.rows().len(),
        App::ALL.len() * 2 * BackendSpec::ALL.len(),
        "every cell must produce a row"
    );
    assert_eq!(parallel.first_error(), None, "every cell must complete");
    let serial = paper_grid().serial().run();
    assert_eq!(
        serial, parallel,
        "parallel results must equal serial results"
    );
}

#[test]
fn thread_count_never_changes_results() {
    let grid = || {
        Sweep::over_apps([App::Cholesky, App::Heat], [128])
            .workers([2, 8])
            .backends([
                BackendSpec::Perfect,
                BackendSpec::Nanos,
                BackendSpec::Picos(HilMode::FullSystem),
            ])
    };
    let reference = grid().threads(1).run();
    for threads in [2, 3, 16] {
        assert_eq!(
            grid().threads(threads).run(),
            reference,
            "{threads} threads"
        );
    }
}

#[test]
fn sweep_rows_match_direct_backend_runs() {
    // The harness must report exactly what a hand-driven backend reports.
    let trace = Arc::new(App::SparseLu.generate(128));
    let result = Sweep::new([Workload::from_trace("sparselu", Arc::clone(&trace))])
        .workers([4])
        .backends(BackendSpec::ALL)
        .run();
    for (row, spec) in result.rows().iter().zip(BackendSpec::ALL) {
        let direct = spec.build(4, &PicosConfig::balanced()).run(&trace).unwrap();
        assert_eq!(row.backend, spec);
        assert_eq!(row.makespan, direct.makespan, "{spec}");
        assert_eq!(row.sequential, direct.sequential, "{spec}");
        assert!((row.speedup - direct.speedup()).abs() < 1e-12, "{spec}");
    }
}

#[test]
fn filter_and_fail_fast_are_reported_per_row() {
    // An impossible cell (zero workers) errors without failing the sweep.
    let result = Sweep::over_apps([App::Cholesky], [256])
        .workers([0, 4])
        .backends([BackendSpec::Nanos])
        .run();
    assert_eq!(result.rows().len(), 2);
    assert!(result.rows()[0].error.is_some(), "w0 must fail");
    assert!(result.rows()[1].error.is_none(), "w4 must pass");

    // Early-exit filter: prune the failing cells from the grid instead.
    let filtered = Sweep::over_apps([App::Cholesky], [256])
        .workers([0, 4])
        .backends([BackendSpec::Nanos])
        .filter(|cell| cell.workers > 0)
        .run();
    assert_eq!(filtered.rows().len(), 1);
    assert_eq!(filtered.first_error(), None);
}
