//! Cross-engine integration tests, generic over `dyn ExecBackend`: every
//! execution engine must produce a legal schedule of the same ground-truth
//! dataflow graph, and their relative performance must respect the
//! structural bounds (perfect is a roofline; nobody beats the critical
//! path or the work bound).
//!
//! The legality/bounds tests iterate `BackendSpec::ALL`, so a backend
//! added to that list is covered here with no test changes.

use picos_repro::prelude::*;

/// Builds every backend family at a worker count and balanced Picos core.
fn all_backends(workers: usize) -> Vec<Box<dyn ExecBackend>> {
    BackendSpec::ALL
        .iter()
        .map(|spec| spec.build(workers, &PicosConfig::balanced()))
        .collect()
}

/// Every backend, every app (coarsest + second paper block size), 8
/// workers: schedules must validate against the dataflow graph.
#[test]
fn all_engines_legal_on_all_apps() {
    for app in gen::App::ALL {
        let sizes = app.paper_block_sizes();
        for bs in [sizes[0], sizes[1]] {
            let trace = app.generate(bs);
            for backend in all_backends(8) {
                let r = backend
                    .run(&trace)
                    .unwrap_or_else(|e| panic!("{} {app} bs {bs}: {e}", backend.name()));
                r.validate(&trace)
                    .unwrap_or_else(|e| panic!("{} {app} bs {bs}: {e}", backend.name()));
            }
        }
    }
}

/// The perfect scheduler is a roofline: no backend may exceed it, and no
/// backend may beat the critical-path or work bounds.
#[test]
fn perfect_dominates_and_bounds_hold() {
    for app in [gen::App::Cholesky, gen::App::SparseLu, gen::App::Heat] {
        let bs = app.paper_block_sizes()[1];
        let trace = app.generate(bs);
        let graph = TaskGraph::build(&trace);
        let cp = graph.critical_path();
        let work = trace.sequential_time();
        for w in [2usize, 8, 16] {
            let roofline = perfect_schedule(&trace, w).speedup();
            for backend in all_backends(w) {
                let r = backend.run(&trace).unwrap();
                assert!(
                    roofline + 1e-9 >= r.speedup(),
                    "{app} w{w}: {} {} beat roofline {roofline}",
                    backend.name(),
                    r.speedup()
                );
                assert!(
                    r.makespan >= cp,
                    "{app} w{w} {}: below critical path",
                    r.engine
                );
                assert!(
                    r.makespan >= work / w as u64,
                    "{app} w{w} {}: below work bound",
                    r.engine
                );
            }
        }
    }
}

/// All three Picos DM designs execute every workload correctly; the design
/// only affects timing, never the schedule's legality.
#[test]
fn dm_designs_all_legal() {
    for app in [gen::App::Heat, gen::App::Lu] {
        let trace = app.generate(app.paper_block_sizes()[1]);
        for dm in DmDesign::ALL {
            let backend = BackendSpec::Picos(HilMode::HwOnly).build(12, &PicosConfig::baseline(dm));
            let r = backend.run(&trace).unwrap();
            r.validate(&trace)
                .unwrap_or_else(|e| panic!("{app} {dm}: {e}"));
        }
    }
}

/// Multi-instance (future architecture) configurations agree with the
/// baseline on legality and complete every task.
#[test]
fn future_architecture_legal() {
    let trace = gen::cholesky(gen::CholeskyConfig::paper(64));
    for n in [1usize, 2, 4] {
        let backend = BackendSpec::Picos(HilMode::HwOnly)
            .build(16, &PicosConfig::future(n, DmDesign::PearsonEightWay));
        let r = backend.run(&trace).unwrap();
        r.validate(&trace)
            .unwrap_or_else(|e| panic!("{n}x{n}: {e}"));
        assert_eq!(r.order.len(), trace.len());
    }
}

/// Same trace, same configuration: byte-identical reports across runs for
/// every backend (the whole reproduction is deterministic).
#[test]
fn determinism_across_engines() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(64));
    for spec in BackendSpec::ALL {
        let backend = spec.build(12, &PicosConfig::balanced());
        let a = backend.run(&trace).unwrap();
        let b = backend.run(&trace).unwrap();
        assert_eq!(a, b, "{spec}");
    }
}

/// A single worker serializes every backend to (at least) the sequential
/// time; the perfect scheduler hits it exactly.
#[test]
fn single_worker_serializes() {
    let trace = gen::heat(gen::HeatConfig::paper(256));
    let seq = trace.sequential_time();
    assert_eq!(perfect_schedule(&trace, 1).makespan, seq);
    for backend in all_backends(1) {
        let r = backend.run(&trace).unwrap();
        assert!(
            r.makespan >= seq,
            "{}: {} below sequential {seq}",
            backend.name(),
            r.makespan
        );
    }
}

/// The LIFO task scheduler produces a different but still legal schedule.
#[test]
fn lifo_schedule_is_legal_and_different() {
    let trace = gen::lu(gen::LuConfig::paper(64));
    let spec = BackendSpec::Picos(HilMode::HwOnly);
    let fifo = spec
        .build(12, &PicosConfig::balanced())
        .run(&trace)
        .unwrap();
    let lifo = spec
        .build(12, &PicosConfig::balanced().with_ts_policy(TsPolicy::Lifo))
        .run(&trace)
        .unwrap();
    lifo.validate(&trace).unwrap();
    assert_ne!(fifo.order, lifo.order, "policies must differ on Lu");
}

/// Engine labels are stable API surface the sweep harness relies on: the
/// spec label, the backend name and the report's engine field all agree.
#[test]
fn engine_labels() {
    let trace = gen::synthetic(gen::Case::Case1);
    for spec in BackendSpec::ALL {
        let backend = spec.build(2, &PicosConfig::balanced());
        assert_eq!(backend.name(), spec.label());
        assert_eq!(backend.run(&trace).unwrap().engine, spec.label());
    }
    assert_eq!(BackendSpec::Picos(HilMode::HwOnly).label(), "picos-hw-only");
    assert_eq!(BackendSpec::Picos(HilMode::HwComm).label(), "picos-hw-comm");
    assert_eq!(
        BackendSpec::Picos(HilMode::FullSystem).label(),
        "picos-full"
    );
    assert_eq!(BackendSpec::Perfect.label(), "perfect");
    assert_eq!(BackendSpec::Nanos.label(), "nanos");
}
