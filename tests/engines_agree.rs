//! Cross-engine integration tests: every execution engine must produce a
//! legal schedule of the same ground-truth dataflow graph, and their
//! relative performance must respect the structural bounds (perfect is a
//! roofline; nobody beats the critical path or the work bound).

use picos_repro::prelude::*;

/// Every engine, every app (coarsest + finest paper block size), 8 workers:
/// schedules must validate against the dataflow graph.
#[test]
fn all_engines_legal_on_all_apps() {
    for app in gen::App::ALL {
        let sizes = app.paper_block_sizes();
        for bs in [sizes[0], sizes[1]] {
            let trace = app.generate(bs);
            let perfect = perfect_schedule(&trace, 8);
            perfect
                .validate(&trace)
                .unwrap_or_else(|e| panic!("perfect {app} bs {bs}: {e}"));
            let nanos = run_software(&trace, SwRuntimeConfig::with_workers(8)).unwrap();
            nanos
                .validate(&trace)
                .unwrap_or_else(|e| panic!("nanos {app} bs {bs}: {e}"));
            for mode in HilMode::ALL {
                let picos = run_hil(&trace, mode, &HilConfig::balanced(8)).unwrap();
                picos
                    .validate(&trace)
                    .unwrap_or_else(|e| panic!("picos {mode} {app} bs {bs}: {e}"));
            }
        }
    }
}

/// The perfect scheduler is a roofline: no engine may exceed it, and no
/// engine may beat the critical-path or work bounds.
#[test]
fn perfect_dominates_and_bounds_hold() {
    for app in [gen::App::Cholesky, gen::App::SparseLu, gen::App::Heat] {
        let bs = app.paper_block_sizes()[1];
        let trace = app.generate(bs);
        let graph = TaskGraph::build(&trace);
        let cp = graph.critical_path();
        let work = trace.sequential_time();
        for w in [2usize, 8, 16] {
            let perfect = perfect_schedule(&trace, w);
            let nanos = run_software(&trace, SwRuntimeConfig::with_workers(w)).unwrap();
            let picos = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(w)).unwrap();
            assert!(
                perfect.speedup() + 1e-9 >= nanos.speedup(),
                "{app} w{w}: nanos {} beat roofline {}",
                nanos.speedup(),
                perfect.speedup()
            );
            assert!(
                perfect.speedup() + 1e-9 >= picos.speedup(),
                "{app} w{w}: picos {} beat roofline {}",
                picos.speedup(),
                perfect.speedup()
            );
            for r in [&perfect, &nanos, &picos] {
                assert!(r.makespan >= cp, "{app} w{w} {}: below critical path", r.engine);
                assert!(
                    r.makespan >= work / w as u64,
                    "{app} w{w} {}: below work bound",
                    r.engine
                );
            }
        }
    }
}

/// All three Picos DM designs execute every workload correctly; the design
/// only affects timing, never the schedule's legality.
#[test]
fn dm_designs_all_legal() {
    for app in [gen::App::Heat, gen::App::Lu] {
        let trace = app.generate(app.paper_block_sizes()[1]);
        for dm in DmDesign::ALL {
            let cfg = HilConfig {
                picos: PicosConfig::baseline(dm),
                ..HilConfig::balanced(12)
            };
            let r = run_hil(&trace, HilMode::HwOnly, &cfg).unwrap();
            r.validate(&trace)
                .unwrap_or_else(|e| panic!("{app} {dm}: {e}"));
        }
    }
}

/// Multi-instance (future architecture) configurations agree with the
/// baseline on legality and complete every task.
#[test]
fn future_architecture_legal() {
    let trace = gen::cholesky(gen::CholeskyConfig::paper(64));
    for n in [1usize, 2, 4] {
        let cfg = HilConfig {
            picos: PicosConfig::future(n, DmDesign::PearsonEightWay),
            ..HilConfig::balanced(16)
        };
        let r = run_hil(&trace, HilMode::HwOnly, &cfg).unwrap();
        r.validate(&trace).unwrap_or_else(|e| panic!("{n}x{n}: {e}"));
        assert_eq!(r.order.len(), trace.len());
    }
}

/// Same trace, same configuration: byte-identical reports across runs and
/// across engines' own repetitions (the whole reproduction is
/// deterministic).
#[test]
fn determinism_across_engines() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(64));
    let a = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(12)).unwrap();
    let b = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(12)).unwrap();
    assert_eq!(a, b);
    let c = run_software(&trace, SwRuntimeConfig::with_workers(12)).unwrap();
    let d = run_software(&trace, SwRuntimeConfig::with_workers(12)).unwrap();
    assert_eq!(c, d);
    let e = perfect_schedule(&trace, 12);
    let f = perfect_schedule(&trace, 12);
    assert_eq!(e, f);
}

/// A single worker serializes every engine to (at least) the sequential
/// time; the perfect scheduler hits it exactly.
#[test]
fn single_worker_serializes() {
    let trace = gen::heat(gen::HeatConfig::paper(256));
    let seq = trace.sequential_time();
    assert_eq!(perfect_schedule(&trace, 1).makespan, seq);
    let nanos = run_software(&trace, SwRuntimeConfig::with_workers(1)).unwrap();
    assert!(nanos.makespan >= seq);
    let picos = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(1)).unwrap();
    assert!(picos.makespan >= seq);
}

/// The LIFO task scheduler produces a different but still legal schedule.
#[test]
fn lifo_schedule_is_legal_and_different() {
    let trace = gen::lu(gen::LuConfig::paper(64));
    let fifo = run_hil(&trace, HilMode::HwOnly, &HilConfig::balanced(12)).unwrap();
    let cfg_lifo = HilConfig {
        picos: PicosConfig::balanced().with_ts_policy(TsPolicy::Lifo),
        ..HilConfig::balanced(12)
    };
    let lifo = run_hil(&trace, HilMode::HwOnly, &cfg_lifo).unwrap();
    lifo.validate(&trace).unwrap();
    assert_ne!(fifo.order, lifo.order, "policies must differ on Lu");
}

/// Engine labels are stable API surface the bench harness relies on.
#[test]
fn engine_labels() {
    let trace = gen::synthetic(gen::Case::Case1);
    assert_eq!(
        run_hil(&trace, HilMode::HwOnly, &HilConfig::balanced(2)).unwrap().engine,
        "picos-hw-only"
    );
    assert_eq!(
        run_hil(&trace, HilMode::HwComm, &HilConfig::balanced(2)).unwrap().engine,
        "picos-hw-comm"
    );
    assert_eq!(
        run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(2)).unwrap().engine,
        "picos-full"
    );
    assert_eq!(perfect_schedule(&trace, 2).engine, "perfect");
    assert_eq!(
        run_software(&trace, SwRuntimeConfig::with_workers(2)).unwrap().engine,
        "nanos"
    );
}
