//! The paper's headline claims, encoded as integration tests. Each test
//! names the section/figure it reproduces; thresholds are deliberately
//! loose (we reproduce shapes, not testbed-exact numbers).

use picos_repro::prelude::*;

/// Figure 1 / Section I: for a constant problem size, the software-only
/// runtime's speedup first rises with decreasing block size, then collapses
/// once overhead outweighs the parallelism gain.
#[test]
fn fig1_software_rises_then_collapses() {
    let s = |bs| {
        run_software(
            &gen::cholesky(gen::CholeskyConfig::paper(bs)),
            SwRuntimeConfig::with_workers(12),
        )
        .unwrap()
        .speedup()
    };
    let (s256, s128, s32) = (s(256), s(128), s(32));
    assert!(s128 > s256, "rise: {s128} vs {s256}");
    assert!(s32 < s128 / 3.0, "collapse: {s32} vs {s128}");
}

/// Section V-D (Figure 11): for fine-grained tasks Picos greatly outperforms
/// the software runtime, and keeps scaling where Nanos++ degrades.
#[test]
fn fig11_picos_beats_nanos_on_fine_grain() {
    for (app, bs) in [
        (gen::App::Cholesky, 32),
        (gen::App::SparseLu, 32),
        (gen::App::Heat, 32),
    ] {
        let trace = app.generate(bs);
        let picos = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(12))
            .unwrap()
            .speedup();
        let nanos = run_software(&trace, SwRuntimeConfig::with_workers(12))
            .unwrap()
            .speedup();
        assert!(
            picos > 2.0 * nanos,
            "{app} bs {bs}: picos {picos:.2} vs nanos {nanos:.2}"
        );
    }
}

/// Section V-D: Nanos++ scales up to ~8 workers then degrades; Picos keeps
/// advancing (SparseLu at block size 64, the paper's example).
#[test]
fn fig11_nanos_degrades_after_8_workers() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(32));
    let nanos8 = run_software(&trace, SwRuntimeConfig::with_workers(8))
        .unwrap()
        .speedup();
    let nanos24 = run_software(&trace, SwRuntimeConfig::with_workers(24))
        .unwrap()
        .speedup();
    assert!(
        nanos24 < nanos8,
        "nanos must degrade beyond 8 workers: {nanos8} -> {nanos24}"
    );
    let picos8 = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(8))
        .unwrap()
        .speedup();
    let picos16 = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(16))
        .unwrap()
        .speedup();
    assert!(
        picos16 > picos8,
        "picos must keep scaling: {picos8} -> {picos16}"
    );
}

/// Section V-A (Figure 8): on Heat's clustered addresses the direct-hash
/// designs do not scale from 2 to 12 workers while Pearson does.
#[test]
fn fig8_direct_hash_flat_on_heat() {
    let trace = gen::heat(gen::HeatConfig::paper(64));
    let speed = |dm, w| {
        let cfg = HilConfig {
            picos: PicosConfig::baseline(dm),
            ..HilConfig::balanced(w)
        };
        run_hil(&trace, HilMode::HwOnly, &cfg).unwrap().speedup()
    };
    let d2 = speed(DmDesign::EightWay, 2);
    let d12 = speed(DmDesign::EightWay, 12);
    assert!(d12 < d2 * 2.0, "8way must not scale: {d2} -> {d12}");
    let p2 = speed(DmDesign::PearsonEightWay, 2);
    let p12 = speed(DmDesign::PearsonEightWay, 12);
    assert!(p12 > p2 * 2.5, "pearson must scale: {p2} -> {p12}");
}

/// Table II: conflict ordering 8way >= 16way >> P+8way on the clustered
/// benchmarks.
#[test]
fn table2_conflict_ordering() {
    let trace = gen::heat(gen::HeatConfig::paper(128));
    let conflicts = |dm| {
        let cfg = HilConfig {
            picos: PicosConfig::baseline(dm),
            ..HilConfig::balanced(12)
        };
        run_hil_with_stats(&trace, HilMode::HwOnly, &cfg)
            .unwrap()
            .1
            .dm_conflicts
    };
    let c8 = conflicts(DmDesign::EightWay);
    let c16 = conflicts(DmDesign::SixteenWay);
    let cp = conflicts(DmDesign::PearsonEightWay);
    assert!(c8 >= c16, "8way {c8} >= 16way {c16}");
    assert!(cp * 5 < c8, "pearson {cp} must be far below 8way {c8}");
}

/// Section V-A: the Lu corner case — with FIFO scheduling, DM 16way beats
/// DM P+8way on the original Lu; MLu (modified creation order) and LIFO
/// both restore P+8way's advantage (Figure 9).
#[test]
fn fig9_lu_corner_case_and_fixes() {
    let lu = gen::lu(gen::LuConfig::paper(32));
    let mlu = gen::lu(gen::LuConfig::paper_modified(32));
    let speed = |trace: &Trace, dm, policy| {
        let cfg = HilConfig {
            picos: PicosConfig::baseline(dm).with_ts_policy(policy),
            ..HilConfig::balanced(12)
        };
        run_hil(trace, HilMode::HwOnly, &cfg).unwrap().speedup()
    };
    // The corner case: 16way > P+8way on plain Lu with FIFO.
    let lu_16 = speed(&lu, DmDesign::SixteenWay, TsPolicy::Fifo);
    let lu_p8 = speed(&lu, DmDesign::PearsonEightWay, TsPolicy::Fifo);
    assert!(
        lu_16 > lu_p8,
        "corner case: 16way {lu_16} vs P+8way {lu_p8}"
    );
    // Fix 1: MLu restores P+8way.
    let mlu_p8 = speed(&mlu, DmDesign::PearsonEightWay, TsPolicy::Fifo);
    assert!(mlu_p8 > lu_p8, "MLu must help P+8way: {mlu_p8} vs {lu_p8}");
    // Fix 2: LIFO restores P+8way on the original Lu.
    let lu_p8_lifo = speed(&lu, DmDesign::PearsonEightWay, TsPolicy::Lifo);
    assert!(
        lu_p8_lifo > lu_p8,
        "LIFO must help: {lu_p8_lifo} vs {lu_p8}"
    );
}

/// Table IV structure: the three HIL modes are strictly ordered in cost,
/// and the Full-system throughput is dominated by ARM+communication, making
/// per-dependence cost amortize for many-dependence tasks.
#[test]
fn table4_mode_ordering_and_amortization() {
    let case3 = gen::synthetic(gen::Case::Case3);
    let cfg = HilConfig::balanced(12);
    let hw = run_hil(&case3, HilMode::HwOnly, &cfg).unwrap();
    let comm = run_hil(&case3, HilMode::HwComm, &cfg).unwrap();
    let full = run_hil(&case3, HilMode::FullSystem, &cfg).unwrap();
    let m_hw = synthetic_metrics(&hw, &case3);
    let m_comm = synthetic_metrics(&comm, &case3);
    let m_full = synthetic_metrics(&full, &case3);
    assert!(m_hw.thr_task < m_comm.thr_task);
    assert!(m_comm.thr_task < m_full.thr_task);
    // thrDep for 15-dep tasks amortizes to near the DCT interval in HW-only
    // and stays far below the per-task cost in Full-system.
    assert!(m_hw.thr_dep.unwrap() < 25.0);
    assert!(m_full.thr_dep.unwrap() < m_full.thr_task / 10.0);
}

/// Section V-B / Table III: Pearson adds little cost to the 8-way DM while
/// the 16-way DM nearly doubles the block-RAM budget; the full design fits
/// comfortably on the XC7Z020.
#[test]
fn table3_resource_story() {
    let dm8 = picos_repro::resources::dm_resources(DmDesign::EightWay, 64);
    let dmp = picos_repro::resources::dm_resources(DmDesign::PearsonEightWay, 64);
    let dm16 = picos_repro::resources::dm_resources(DmDesign::SixteenWay, 64);
    assert!(dmp.bram36 <= dm8.bram36 + 3);
    assert!(dm16.bram36 as f64 >= 1.6 * dm8.bram36 as f64);
    let full = full_picos_resources(&PicosConfig::balanced());
    let (lut, ff, bram) = full.percent_of(XC7Z020);
    assert!(lut < 10.0 && ff < 3.0 && bram < 25.0);
}

/// Section VI ("main lessons"): the way data is exchanged with the
/// accelerator matters — the communication layer costs more than the raw
/// dependence management (HW+comm >> HW-only per task), and the software
/// side dominates end to end (Full-system >> HW+comm).
#[test]
fn lessons_transfer_overhead_dominates() {
    let case2 = gen::synthetic(gen::Case::Case2);
    let cfg = HilConfig::balanced(12);
    let m_hw = synthetic_metrics(&run_hil(&case2, HilMode::HwOnly, &cfg).unwrap(), &case2);
    let m_comm = synthetic_metrics(&run_hil(&case2, HilMode::HwComm, &cfg).unwrap(), &case2);
    let m_full = synthetic_metrics(&run_hil(&case2, HilMode::FullSystem, &cfg).unwrap(), &case2);
    assert!(
        m_comm.thr_task > 10.0 * m_hw.thr_task,
        "communication must dwarf hardware time: {} vs {}",
        m_comm.thr_task,
        m_hw.thr_task
    );
    assert!(
        m_full.thr_task > 3.0 * m_comm.thr_task,
        "software must dwarf communication: {} vs {}",
        m_full.thr_task,
        m_comm.thr_task
    );
}

/// The prototype headline: "able to manage up to 256 in-flight tasks with
/// up to 15 dependences each".
#[test]
fn headline_capacities() {
    let cfg = PicosConfig::balanced();
    assert_eq!(cfg.in_flight_capacity(), 256);
    assert_eq!(cfg.max_deps_per_task, 15);
    // A trace exercising both limits completes.
    let mut trace = Trace::new("capacity");
    let k = picos_repro::trace::KernelClass::GENERIC;
    for i in 0..300u64 {
        let deps: Vec<_> = (0..15)
            .map(|d| Dependence::input(0x100000 + (i * 15 + d) * 8))
            .collect();
        trace.push(k, deps, 10);
    }
    let r = run_hil(&trace, HilMode::HwOnly, &HilConfig::balanced(12)).unwrap();
    assert_eq!(r.order.len(), 300);
}
