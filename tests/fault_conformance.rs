//! Fault-layer and session-journal conformance pins.
//!
//! Two bit-identity contracts guard the fault subsystem:
//!
//! * **Zero-fault identity** — attaching a [`FaultPlan`] that can inject
//!   nothing must leave every observable of a cluster run untouched:
//!   makespan, execution order, per-task start/end times, hardware
//!   counters, telemetry timelines and the metrics registry, on every
//!   golden workload, DM design and simulation thread count.
//! * **Journal-replay identity** — replaying a [`SessionJournal`] recorded
//!   from a session's *accepted* ingest stream into a fresh session must
//!   reproduce the original run bit-for-bit: for batch feeds, for random
//!   step/drain/advance interleavings, and for the crash-recovery shape
//!   (replay the journal, then keep feeding live).
//!
//! Faulted runs themselves are pinned on determinism: the same plan over
//! the same trace twice gives identical schedules, counters and errors.

use picos_backend::{feed_trace, Admission, BackendSpec, SessionConfig, SessionCore};
use picos_cluster::{run_cluster_with_stats, ClusterConfig, ClusterSession, FaultPlan};
use picos_core::{DmDesign, PicosConfig};
use picos_runtime::{replay_journal, JournaledSession};
use picos_trace::rng::SplitMix64;
use picos_trace::{gen, SessionJournal, Trace};

const WORKERS: usize = 12;

/// Every workload the golden-timing suite pins, plus the stream generator
/// (same set as `tests/cluster_conformance.rs`).
fn golden_workloads() -> Vec<(String, Trace)> {
    let mut out: Vec<(String, Trace)> = gen::Case::ALL
        .into_iter()
        .map(|c| (format!("{c:?}"), gen::synthetic(c)))
        .collect();
    out.push((
        "cholesky256".into(),
        gen::cholesky(gen::CholeskyConfig::paper(256)),
    ));
    out.push((
        "sparselu128".into(),
        gen::sparselu(gen::SparseLuConfig::paper(128)),
    ));
    out.push(("stream".into(), gen::stream(gen::StreamConfig::heavy(400))));
    out
}

/// Thread counts the pins run at; `CLUSTER_TEST_THREADS=2,8` narrows the
/// sweep (CI re-runs the suite that way under
/// `PICOS_CLUSTER_FORCE_THREADS=1`, so real OS threads are exercised even
/// on single-core runners).
fn test_thread_counts() -> Vec<usize> {
    match std::env::var("CLUSTER_TEST_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CLUSTER_TEST_THREADS: bad count"))
            .collect(),
        Err(_) => (1..=8).collect(),
    }
}

#[test]
fn zero_fault_plan_is_bit_identical_to_no_plan() {
    // The serial plan-free run is the single reference; zero-fault runs at
    // every thread count must match it exactly (parallel == serial is
    // already pinned by cluster_conformance, so one reference suffices).
    for (label, trace) in golden_workloads() {
        for dm in DmDesign::ALL {
            let cfg = ClusterConfig {
                picos: PicosConfig::baseline(dm),
                ..ClusterConfig::balanced(8, WORKERS)
            };
            let (base, base_stats) =
                run_cluster_with_stats(&trace, &cfg).expect("plain run completes");
            for threads in test_thread_counts() {
                let faulted_cfg = cfg
                    .clone()
                    .with_threads(threads)
                    .with_faults(FaultPlan::new(0xD15EA5E));
                let (r, stats) = run_cluster_with_stats(&trace, &faulted_cfg)
                    .unwrap_or_else(|e| panic!("{label} {dm} t{threads}: {e}"));
                assert_eq!(
                    r.makespan, base.makespan,
                    "{label} {dm} t{threads}: makespan drifted"
                );
                assert_eq!(
                    r.order, base.order,
                    "{label} {dm} t{threads}: order drifted"
                );
                assert_eq!(
                    r.start, base.start,
                    "{label} {dm} t{threads}: start times drifted"
                );
                assert_eq!(
                    r.end, base.end,
                    "{label} {dm} t{threads}: end times drifted"
                );
                assert_eq!(
                    stats, base_stats,
                    "{label} {dm} t{threads}: hardware counters drifted"
                );
            }
        }
    }
}

#[test]
fn fault_telemetry_is_gated_on_active_plans() {
    // A zero-fault plan must be invisible in telemetry too: identical
    // timeline and metrics, no faults.* series. An active plan registers
    // the full faults.* scope.
    let trace = gen::stream(gen::StreamConfig::heavy(400));
    let run = |faults: Option<FaultPlan>| {
        let cfg = SessionConfig {
            timeline_window: Some(2_000),
            ..SessionConfig::batch()
        };
        BackendSpec::Cluster(4)
            .builder(8)
            .faults(faults)
            .build()
            .run_with_telemetry(&trace, cfg)
            .expect("cluster completes")
    };
    let plain = run(None);
    let zero = run(Some(FaultPlan::new(9)));
    assert_eq!(
        zero, plain,
        "zero-fault output must be identical to no plan"
    );
    let plain_tl = plain.timeline.as_ref().expect("timeline requested");
    assert!(
        plain_tl.series_index("faults.drops").is_none(),
        "fault-free runs register no faults.* series"
    );

    let lossy = run(Some(FaultPlan::new(9).with_drop_rate(0.05)));
    let tl = lossy.timeline.as_ref().expect("timeline requested");
    for name in [
        "faults.drops",
        "faults.retries",
        "faults.redeliveries",
        "faults.recoveries",
    ] {
        assert!(
            tl.series_index(name).is_some(),
            "{name} series missing from a lossy run's timeline"
        );
    }
    assert!(
        lossy.metrics.value("faults.drops").is_some(),
        "lossy runs report fault counters"
    );
}

#[test]
fn faulted_runs_are_deterministic_and_counted() {
    let trace = gen::stream(gen::StreamConfig::heavy(400));
    let plan = FaultPlan::new(41)
        .with_drop_rate(0.08)
        .with_dup_rate(0.05)
        .with_jitter(0.2, 24);
    let cfg = ClusterConfig::balanced(4, 8).with_faults(plan);
    let run = || {
        let mut s = ClusterSession::new(cfg.clone(), SessionConfig::batch()).expect("valid config");
        feed_trace(&mut s, &trace).expect("batch window cannot stall");
        s.into_output()
    };
    match (run(), run()) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a, b, "same plan, same trace: outputs must be identical");
            let counters = a.3.expect("active plans report counters");
            assert!(counters.drops > 0, "an 8% drop rate must drop something");
            a.0.validate(&trace).expect("faulted schedule stays legal");
        }
        (Err(a), Err(b)) => {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "errors must repeat");
        }
        (a, b) => panic!("nondeterministic outcome: {a:?} vs {b:?}"),
    }
}

/// A fresh 4-shard cluster session for the journal pins.
fn cluster_session(cfg: SessionConfig) -> ClusterSession {
    ClusterSession::new(ClusterConfig::balanced(4, 8), cfg).expect("valid config")
}

#[test]
fn journal_replay_reproduces_batch_feeds_bit_exactly() {
    let trace = gen::stream(gen::StreamConfig::heavy(400));
    let mut s = JournaledSession::new(cluster_session(SessionConfig::batch()));
    feed_trace(&mut s, &trace).expect("batch window cannot stall");
    let (inner, journal) = s.into_parts();
    let original = inner.into_output().expect("original completes");
    let mut fresh = cluster_session(SessionConfig::batch());
    replay_journal(&mut fresh, &journal).expect("replay cannot stall");
    let replayed = fresh.into_output().expect("replay completes");
    assert_eq!(replayed, original, "batch replay drifted");
}

#[test]
fn journal_replay_reproduces_random_interleavings_bit_exactly() {
    // The journal records only accepted submits, barriers and advances —
    // no step calls. Replay must still reproduce the run exactly, for any
    // interleaving of voluntary steps and idle advances in the original.
    let trace = gen::stream(gen::StreamConfig::heavy(300));
    for seed in 0..4u64 {
        let mut rng = SplitMix64::new(0x10AD ^ seed);
        let mut s = JournaledSession::new(cluster_session(SessionConfig::windowed(8)));
        for task in trace.iter() {
            while s.submit(task) == Admission::Backpressured {
                assert!(s.step(), "seed {seed}: session stalled");
            }
            if rng.bool(0.3) {
                s.step();
            }
            if rng.bool(0.1) {
                let target = s.now() + rng.range_u64(1, 5_000);
                s.advance_to(target);
            }
            if rng.bool(0.05) {
                s.barrier();
            }
        }
        let (inner, journal) = s.into_parts();
        let original = inner.into_output().expect("original completes");
        // Roundtrip through the JSON codec: recovery reads a journal file.
        let journal = SessionJournal::from_json(&journal.to_json()).expect("codec roundtrips");
        let mut fresh = cluster_session(SessionConfig::windowed(8));
        replay_journal(&mut fresh, &journal).expect("replay cannot stall");
        let replayed = fresh.into_output().expect("replay completes");
        assert_eq!(replayed.0, original.0, "seed {seed}: report drifted");
        assert_eq!(replayed.1, original.1, "seed {seed}: stats drifted");
    }
}

#[test]
fn crash_recovery_replays_then_continues_live() {
    // The recovery shape: a client crashes mid-stream, a fresh session
    // replays the journal, and the producer keeps feeding where it left
    // off. The stitched run must equal one uninterrupted session.
    let trace = gen::stream(gen::StreamConfig::heavy(300));
    let tasks: Vec<_> = trace.iter().collect();
    let half = tasks.len() / 2;

    let drive_first_half = |s: &mut dyn SessionCore, rng: &mut SplitMix64| {
        for task in &tasks[..half] {
            while s.submit(task) == Admission::Backpressured {
                assert!(s.step(), "session stalled");
            }
            if rng.bool(0.25) {
                s.step();
            }
        }
    };
    let drive_second_half = |s: &mut dyn SessionCore| {
        for task in &tasks[half..] {
            while s.submit(task) == Admission::Backpressured {
                assert!(s.step(), "session stalled");
            }
        }
    };

    // Reference: one uninterrupted session.
    let mut reference = cluster_session(SessionConfig::windowed(8));
    let mut rng = SplitMix64::new(7);
    drive_first_half(&mut reference, &mut rng);
    drive_second_half(&mut reference);
    let expect = reference.into_output().expect("reference completes");

    // Crash after the first half: only the serialized journal survives.
    let mut rng = SplitMix64::new(7);
    let mut s = JournaledSession::new(cluster_session(SessionConfig::windowed(8)));
    drive_first_half(&mut s, &mut rng);
    let (_lost_session, journal) = s.into_parts();
    let journal = SessionJournal::from_json(&journal.to_json()).expect("codec roundtrips");

    let mut recovered = cluster_session(SessionConfig::windowed(8));
    replay_journal(&mut recovered, &journal).expect("replay cannot stall");
    drive_second_half(&mut recovered);
    let got = recovered.into_output().expect("recovered run completes");
    assert_eq!(got.0, expect.0, "recovered schedule drifted");
    assert_eq!(got.1, expect.1, "recovered counters drifted");
}
