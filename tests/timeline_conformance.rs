//! Timeline conformance: telemetry is deterministic and observation-only.
//!
//! Three promises of the cycle-windowed telemetry layer are pinned here,
//! across every backend family:
//!
//! 1. **Determinism** — the same workload, configuration and window
//!    produce byte-identical [`Timeline`]s on repeated runs.
//! 2. **Path independence** — the batch driver, a hand-driven streaming
//!    session and the paced driver at interarrival 0 (all tasks arrive at
//!    cycle 0, i.e. the batch arrival pattern) produce the same timeline.
//! 3. **Observation only** — attaching a sampler changes no cycle: the
//!    report and hardware counters equal the probes-only run, and the
//!    delta series sum back to the end-of-run counters exactly.

use picos_repro::prelude::*;

const WINDOW: u64 = 500;

fn families() -> Vec<BackendSpec> {
    vec![
        BackendSpec::Perfect,
        BackendSpec::Nanos,
        BackendSpec::Picos(HilMode::HwOnly),
        BackendSpec::Picos(HilMode::FullSystem),
        BackendSpec::Cluster(2),
    ]
}

fn telemetry(spec: BackendSpec, trace: &Trace) -> SessionOutput {
    let backend = spec.build(8, &PicosConfig::balanced());
    backend
        .run_with_telemetry(trace, SessionConfig::timed(WINDOW))
        .unwrap_or_else(|e| panic!("{spec}: {e}"))
}

#[test]
fn identical_timelines_on_repeated_runs() {
    let trace = gen::cholesky(gen::CholeskyConfig::paper(128));
    for spec in families() {
        let a = telemetry(spec, &trace);
        let b = telemetry(spec, &trace);
        assert_eq!(a, b, "{spec}: telemetry must be deterministic");
        assert!(a.timeline.is_some(), "{spec}: a timeline was requested");
    }
}

#[test]
fn batch_session_and_paced_paths_agree() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    for spec in families() {
        let backend = spec.build(8, &PicosConfig::balanced());
        let batch = backend
            .run_with_telemetry(&trace, SessionConfig::timed(WINDOW))
            .unwrap();
        // Hand-driven streaming session, one task at a time.
        let mut s = backend.open_with(SessionConfig::timed(WINDOW)).unwrap();
        feed_trace(&mut *s, &trace).unwrap();
        let streamed = s.finish_full().unwrap();
        assert_eq!(batch, streamed, "{spec}: streamed != batch");
        // Paced driver at interarrival 0: every task arrives at cycle 0,
        // exactly the batch arrival pattern — the engine-side timeline
        // (the non-`pace.` columns) must match the batch run's.
        let paced =
            run_paced_with_telemetry(&*backend, PacedTrace::new(&trace, 0), None, Some(WINDOW))
                .unwrap();
        assert_eq!(paced.report, batch.report, "{spec}: paced-0 != batch");
        let batch_tl = batch.timeline.expect("batch timeline requested");
        let paced_tl = paced.timeline.expect("paced timeline requested");
        assert_eq!(paced_tl.len(), batch_tl.len(), "{spec}: sample counts");
        for series in batch_tl.series() {
            assert_eq!(
                paced_tl.column(&series.name),
                batch_tl.column(&series.name),
                "{spec}: series {} differs between paced-0 and batch",
                series.name
            );
        }
    }
}

#[test]
fn telemetry_is_observation_only() {
    let trace = gen::cholesky(gen::CholeskyConfig::paper(128));
    for spec in families() {
        let backend = spec.build(8, &PicosConfig::balanced());
        let (plain_report, plain_stats) = backend.run_with_stats(&trace).unwrap();
        let timed = backend
            .run_with_telemetry(&trace, SessionConfig::timed(WINDOW))
            .unwrap();
        assert_eq!(timed.report, plain_report, "{spec}: probes changed a cycle");
        assert_eq!(timed.stats, plain_stats, "{spec}: probes changed a counter");
    }
}

#[test]
fn delta_series_sum_to_end_of_run_counters() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let out = telemetry(BackendSpec::Picos(HilMode::HwOnly), &trace);
    let stats = out.stats.expect("picos counters");
    let tl = out.timeline.expect("timeline requested");
    let sum = |name: &str| {
        tl.column(name)
            .unwrap_or_else(|| panic!("missing series {name}"))
            .iter()
            .sum::<u64>()
    };
    assert_eq!(sum("core.busy.gw"), stats.busy_gw);
    assert_eq!(sum("core.busy.trs"), stats.busy_trs);
    assert_eq!(sum("core.busy.dct"), stats.busy_dct);
    assert_eq!(sum("core.busy.arb"), stats.busy_arb);
    assert_eq!(sum("core.busy.ts"), stats.busy_ts);
    assert_eq!(sum("core.done.tasks"), stats.tasks_completed);
    assert_eq!(sum("core.done.deps"), stats.deps_processed);
    assert_eq!(sum("core.stall.dm"), stats.dm_conflicts);
    // The timeline spans the whole run: it ends at engine quiescence,
    // which is at or shortly after the last task's completion (the core
    // still drains the finish pipeline past the makespan).
    let (_, last_end, _) = tl.sample(tl.len() - 1);
    assert!(last_end >= out.report.makespan, "timeline spans the run");
    assert!(
        last_end - out.report.makespan < 10_000,
        "only the retire pipeline drains past the makespan"
    );
    assert!(tl.len() as u64 >= out.report.makespan / WINDOW);
}

#[test]
fn cluster_timeline_scopes_every_shard_and_link() {
    let trace = gen::stream(gen::StreamConfig::heavy(400));
    let out = telemetry(BackendSpec::Cluster(2), &trace);
    let tl = out.timeline.expect("timeline requested");
    for name in [
        "workers.busy",
        "link0.inflight",
        "link0.sent",
        "link1.inflight",
        "link1.sent",
        "s0.core.busy.gw",
        "s1.core.busy.gw",
        "s0.core.occ.dm",
        "s1.core.occ.dm",
    ] {
        assert!(
            tl.series_index(name).is_some(),
            "missing cluster series {name}"
        );
    }
    // Cross-shard traffic happens and is windowed: link.sent deltas sum
    // to the total interconnect message count, which must be positive on
    // a two-shard stream run.
    let sent: u64 = (0..2)
        .map(|k| {
            tl.column(&format!("link{k}.sent"))
                .unwrap()
                .iter()
                .sum::<u64>()
        })
        .sum();
    assert!(sent > 0, "two shards must exchange messages");
    // Per-shard metric scopes exist in the registry, and busy totals in
    // the registry match the merged stats field.
    let stats = out.stats.expect("cluster counters");
    let shard_busy: u64 = (0..2)
        .map(|k| out.metrics.value(&format!("shard{k}.busy_gw")).unwrap())
        .sum();
    assert_eq!(shard_busy, stats.busy_gw, "scoped registry matches merge");
}

#[test]
fn paced_driver_records_windowed_backpressure() {
    let trace = gen::stream(gen::StreamConfig::heavy(400));
    let backend = BackendSpec::Picos(HilMode::HwOnly).build(2, &PicosConfig::balanced());
    let r = run_paced_with_telemetry(&*backend, PacedTrace::new(&trace, 1), Some(8), Some(WINDOW))
        .unwrap();
    assert!(r.backpressured_tasks > 0, "rate 1/cycle must saturate");
    let tl = r.timeline.expect("timeline requested");
    let bp = tl.column("pace.backpressured").expect("driver series");
    assert_eq!(
        bp.iter().sum::<u64>(),
        r.backpressured_tasks as u64,
        "windowed backpressure sums to the total"
    );
    let retries = tl.column("pace.retries").expect("driver series");
    assert_eq!(retries.iter().sum::<u64>(), r.retries);
    let inflight = tl.column("pace.inflight").expect("driver series");
    assert!(
        inflight.iter().any(|&v| v > 0),
        "in-flight occupancy was sampled"
    );
    assert!(inflight.iter().all(|&v| v <= 8), "window cap respected");
    // The admission histogram is in the registry.
    assert!(r.metrics.get("pace.inflight_hist").is_some());
    // Telemetry does not perturb the paced run either.
    let plain = run_paced(&*backend, PacedTrace::new(&trace, 1), Some(8)).unwrap();
    assert_eq!(plain.report, r.report);
    assert_eq!(plain.retries, r.retries);
}

#[test]
fn sweep_cells_record_timelines() {
    let result = Sweep::over_apps([gen::App::Cholesky], [256])
        .workers([4])
        .backends([BackendSpec::Perfect, BackendSpec::Picos(HilMode::HwOnly)])
        .timeline(2_000)
        .run();
    assert_eq!(result.first_error(), None);
    for row in result.rows() {
        let tl = row.timeline.as_ref().expect("timeline requested");
        assert!(!tl.is_empty(), "{}: empty timeline", row.backend);
        assert_eq!(tl.window(), 2_000);
    }
    let csv = result.timelines_csv();
    assert!(csv.starts_with(
        "workload,block_size,backend,workers,dm,instances,shards,threads,\
         window_start,window_end,series,value\n"
    ));
    assert!(csv.contains("cholesky,256,picos-hw-only,4"));
    assert!(csv.contains(",core.busy.gw,"));
    // Without the knob, rows carry no timelines and the CSV is header-only.
    let plain = Sweep::over_apps([gen::App::Cholesky], [256])
        .workers([4])
        .backends([BackendSpec::Perfect])
        .run();
    assert!(plain.rows().iter().all(|r| r.timeline.is_none()));
    assert_eq!(plain.timelines_csv().lines().count(), 1);
}

#[test]
fn table_iv_extraction_works_on_any_backend() {
    // The deduped Table IV extraction: the report method and the HIL
    // wrapper agree, and the extraction runs on non-HIL reports too.
    let trace = gen::synthetic(gen::Case::Case2);
    let avg = trace.stats().avg_deps();
    let hil = run_hil(&trace, HilMode::HwOnly, &HilConfig::balanced(12)).unwrap();
    assert_eq!(hil.synthetic_metrics(avg), synthetic_metrics(&hil, &trace));
    for spec in families() {
        let r = spec.build(8, &PicosConfig::balanced()).run(&trace).unwrap();
        let m = r.synthetic_metrics(avg);
        assert!(m.thr_task >= 0.0, "{spec}");
        assert!(m.thr_dep.is_some(), "{spec}: case2 has dependences");
    }
}

#[test]
fn zero_timeline_window_is_a_config_error_everywhere() {
    let trace = gen::synthetic(gen::Case::Case1);
    for spec in families() {
        let backend = spec.build(4, &PicosConfig::balanced());
        let r = backend.run_with_telemetry(&trace, SessionConfig::timed(0));
        assert!(r.is_err(), "{spec}: zero window must be rejected");
    }
}
