//! Taskwait (explicit synchronization, paper Section II-A) integration
//! tests: every engine must respect `#pragma omp taskwait` barriers — later
//! tasks may not start before every earlier task finished.

use picos_repro::prelude::*;
use picos_repro::trace::KernelClass;

/// Independent tasks split by a taskwait: the barrier must show up in every
/// engine's schedule even though there are no data dependences at all.
fn barrier_trace(per_side: usize) -> Trace {
    let mut tr = Trace::new("barrier");
    let k = KernelClass::GENERIC;
    for i in 0..per_side as u64 {
        tr.push(k, [Dependence::output(0x1000 + i * 8)], 500);
    }
    tr.push_taskwait();
    for i in 0..per_side as u64 {
        tr.push(k, [Dependence::output(0x9000 + i * 8)], 500);
    }
    tr
}

#[test]
fn all_engines_respect_taskwait() {
    let tr = barrier_trace(20);
    let perfect = perfect_schedule(&tr, 8);
    perfect.validate(&tr).unwrap();
    let nanos = run_software(&tr, SwRuntimeConfig::with_workers(8)).unwrap();
    nanos.validate(&tr).unwrap();
    for mode in HilMode::ALL {
        let picos = run_hil(&tr, mode, &HilConfig::balanced(8)).unwrap();
        picos
            .validate(&tr)
            .unwrap_or_else(|e| panic!("{mode}: {e}"));
    }
}

#[test]
fn taskwait_halves_parallel_throughput() {
    // Two batches of independent equal tasks: with the barrier the perfect
    // makespan is exactly two batch-rounds.
    let tr = barrier_trace(16);
    let r = perfect_schedule(&tr, 16);
    assert_eq!(r.makespan, 2 * 500);
    // Without a barrier the same tasks finish in one round.
    let mut free = Trace::new("free");
    let k = KernelClass::GENERIC;
    for i in 0..32u64 {
        free.push(k, [Dependence::output(0x1000 + i * 8)], 500);
    }
    assert_eq!(perfect_schedule(&free, 32).makespan, 500);
}

#[test]
fn graph_treats_barrier_as_cut() {
    let tr = barrier_trace(4);
    let g = TaskGraph::build(&tr);
    assert_eq!(g.barriers(), &[4]);
    // No explicit dataflow edges (distinct addresses), yet an order that
    // interleaves the two halves is illegal.
    assert_eq!(g.num_edges(), 0);
    assert!(g.is_topological(&[0, 1, 2, 3, 4, 5, 6, 7]));
    assert!(!g.is_topological(&[0, 1, 2, 4, 3, 5, 6, 7]));
    // Critical path is two tasks deep because of the cut.
    assert_eq!(g.critical_path(), 1_000);
}

#[test]
fn heat_sweeps_with_taskwait_run_everywhere() {
    let tr = gen::heat(gen::HeatConfig {
        sweeps: 3,
        taskwait_between_sweeps: true,
        calibrate: false,
        ..gen::HeatConfig::paper(256)
    });
    assert_eq!(tr.barriers().len(), 2);
    let picos = run_hil(&tr, HilMode::FullSystem, &HilConfig::balanced(8)).unwrap();
    picos.validate(&tr).unwrap();
    let nanos = run_software(&tr, SwRuntimeConfig::with_workers(8)).unwrap();
    nanos.validate(&tr).unwrap();
    let perfect = perfect_schedule(&tr, 8);
    perfect.validate(&tr).unwrap();
    assert!(perfect.speedup() + 1e-9 >= picos.speedup());
}

#[test]
fn software_master_blocks_at_taskwait() {
    // With one executing worker and a taskwait in the middle, the second
    // half cannot even be created before the first half retires: makespan
    // must exceed the duration sum of the first half plus the creation
    // overhead of the second.
    let tr = barrier_trace(10);
    let r = run_software(&tr, SwRuntimeConfig::with_workers(2)).unwrap();
    r.validate(&tr).unwrap();
    let first_half_end = (0..10).map(|i| r.end[i]).max().unwrap();
    let second_half_start = (10..20).map(|i| r.start[i]).min().unwrap();
    assert!(second_half_start >= first_half_end);
}

#[test]
fn validate_catches_barrier_violation() {
    let tr = barrier_trace(1);
    let bogus = picos_repro::runtime::ExecReport {
        engine: "bogus".into(),
        workers: 2,
        makespan: 500,
        sequential: 1_000,
        order: vec![0, 1],
        start: vec![0, 0], // both at once: violates the taskwait
        end: vec![500, 500],
    };
    let err = bogus.validate(&tr).unwrap_err();
    assert!(err.contains("taskwait"), "{err}");
}
