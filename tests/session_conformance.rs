//! Session conformance: streaming execution is bit-exact with batch.
//!
//! For every backend family × every synthetic testcase plus the Cholesky
//! and SparseLU applications, a session driven one task at a time — and
//! one driven with a random interleaving of submits, steps and event
//! drains — must reproduce the batch `run_with_stats` result exactly:
//! makespan, schedule order, per-task start/end times and hardware
//! counters. This pins the core promise of the session API: submission
//! call patterns never perturb the simulation, because the engine's own
//! timing model (not the client's call clock) decides when tasks are
//! created, and `step` refuses to run ahead of an open input stream.

use picos_repro::prelude::*;
use picos_trace::rng::SplitMix64;

/// The conformance workloads: all seven synthetic cases plus the two
/// paper applications named by the roadmap issue.
fn workloads() -> Vec<Trace> {
    let mut out: Vec<Trace> = gen::Case::ALL.into_iter().map(gen::synthetic).collect();
    out.push(gen::cholesky(gen::CholeskyConfig::paper(128)));
    out.push(gen::sparselu(gen::SparseLuConfig::paper(128)));
    out
}

/// Feeds the trace one task at a time, declaring barriers, stepping on
/// backpressure — the canonical streaming client.
fn drive_one_at_a_time(
    backend: &dyn ExecBackend,
    trace: &Trace,
) -> (ExecReport, Option<picos_repro::core::Stats>) {
    let mut s = backend.open().unwrap();
    let mut barriers = trace.barriers().iter().peekable();
    for (i, task) in trace.iter().enumerate() {
        while barriers.peek() == Some(&&(i as u32)) {
            s.barrier();
            barriers.next();
        }
        loop {
            match s.submit(task) {
                Admission::Accepted => break,
                Admission::Backpressured => assert!(s.step(), "must drain"),
            }
        }
    }
    s.finish().unwrap()
}

/// Feeds the trace with a seeded random interleaving of submits, steps
/// and event drains. Steps while the session is open and unblocked are
/// no-ops by contract, which is exactly what keeps this bit-exact.
fn drive_randomly(
    backend: &dyn ExecBackend,
    trace: &Trace,
    seed: u64,
) -> (ExecReport, Option<picos_repro::core::Stats>) {
    let mut rng = SplitMix64::new(seed);
    let mut s = backend
        .open_with(SessionConfig {
            collect_events: true,
            ..SessionConfig::batch()
        })
        .unwrap();
    let mut events = Vec::new();
    let mut barriers = trace.barriers().iter().peekable();
    for (i, task) in trace.iter().enumerate() {
        while barriers.peek() == Some(&&(i as u32)) {
            s.barrier();
            barriers.next();
        }
        // Interleave a random burst of steps and event drains between
        // submissions (steps are no-ops while the session is open and
        // unblocked — that contract is what keeps this bit-exact).
        for _ in 0..rng.below(4) {
            if rng.below(2) == 0 {
                s.step();
            } else {
                s.drain_events(&mut events);
            }
        }
        loop {
            match s.submit(task) {
                Admission::Accepted => break,
                Admission::Backpressured => assert!(s.step(), "must drain"),
            }
        }
    }
    s.drain_events(&mut events);
    s.finish().unwrap()
}

#[test]
fn one_at_a_time_sessions_are_bit_exact_with_batch() {
    for trace in workloads() {
        for spec in BackendSpec::ALL {
            let backend = spec.build(8, &PicosConfig::balanced());
            let batch = backend.run_with_stats(&trace).unwrap();
            let streamed = drive_one_at_a_time(&*backend, &trace);
            assert_eq!(
                batch, streamed,
                "{spec} on {}: streaming diverged from batch",
                trace.name
            );
        }
    }
}

#[test]
fn random_interleavings_are_bit_exact_with_batch() {
    for trace in workloads() {
        for spec in BackendSpec::ALL {
            let backend = spec.build(8, &PicosConfig::balanced());
            let batch = backend.run_with_stats(&trace).unwrap();
            for seed in [0x5EED, 0xD1CE] {
                let streamed = drive_randomly(&*backend, &trace, seed);
                assert_eq!(
                    batch, streamed,
                    "{spec} on {} seed {seed:#x}: random interleaving diverged",
                    trace.name
                );
            }
        }
    }
}

#[test]
fn parallel_cluster_sessions_are_bit_exact_with_serial_batch() {
    // The conservative-parallel cluster engine under every session call
    // pattern, compared against the *serial* engine's batch result: this
    // pins session bit-exactness and parallel==serial in one assertion.
    // (Feeds still admit through the serial path; the epoch engine takes
    // over once the input stream closes or the session jumps time.)
    for trace in workloads() {
        let serial = BackendSpec::Cluster(4)
            .build(8, &PicosConfig::balanced())
            .run_with_stats(&trace)
            .unwrap();
        for threads in [2usize, 4] {
            let backend = BackendSpec::Cluster(4)
                .builder(8)
                .picos(&PicosConfig::balanced())
                .threads(Some(threads))
                .build();
            let streamed = drive_one_at_a_time(&*backend, &trace);
            assert_eq!(
                serial, streamed,
                "cluster t{threads} on {}: one-at-a-time diverged from serial batch",
                trace.name
            );
            for seed in [0x5EED, 0xD1CE] {
                let streamed = drive_randomly(&*backend, &trace, seed);
                assert_eq!(
                    serial, streamed,
                    "cluster t{threads} on {} seed {seed:#x}: random interleaving \
                     diverged from serial batch",
                    trace.name
                );
            }
        }
    }
}

#[test]
fn batch_default_methods_agree_with_each_other() {
    // run() must be run_with_stats() minus the counters, for every family.
    let trace = gen::synthetic(gen::Case::Case4);
    for spec in BackendSpec::ALL {
        let backend = spec.build(6, &PicosConfig::balanced());
        let (with_stats, _) = backend.run_with_stats(&trace).unwrap();
        let plain = backend.run(&trace).unwrap();
        assert_eq!(with_stats, plain, "{spec}");
    }
}

#[test]
fn open_sessions_hold_time_while_unblocked() {
    // The mechanism behind bit-exactness: an open, unblocked session never
    // advances its clock on step(), for every backend family.
    let trace = gen::synthetic(gen::Case::Case1);
    for spec in BackendSpec::ALL {
        let backend = spec.build(4, &PicosConfig::balanced());
        let mut s = backend.open().unwrap();
        for task in trace.iter().take(10) {
            assert_eq!(s.submit(task), Admission::Accepted, "{spec}");
            assert!(!s.step(), "{spec}: open unblocked session must hold");
            assert_eq!(s.now(), 0, "{spec}: clock moved while open");
        }
        let (r, _) = s.finish().unwrap();
        assert_eq!(r.order.len(), 10, "{spec}");
    }
}

#[test]
fn taskwait_traces_stream_bit_exact() {
    // Barrier declarations through the session API must reproduce the
    // trace's creation-gating exactly.
    let mut tr = Trace::new("barriered");
    let k = picos_repro::trace::KernelClass::GENERIC;
    for i in 0..30u64 {
        tr.push(k, [Dependence::inout(0x4000 + (i % 7) * 0x40)], 200);
    }
    tr.push_taskwait();
    for i in 0..30u64 {
        tr.push(k, [Dependence::inout(0x8000 + (i % 5) * 0x40)], 150);
    }
    tr.push_taskwait();
    for _ in 0..10u64 {
        tr.push(k, [], 75);
    }
    for spec in BackendSpec::ALL {
        let backend = spec.build(4, &PicosConfig::balanced());
        let batch = backend.run_with_stats(&tr).unwrap();
        let streamed = drive_one_at_a_time(&*backend, &tr);
        assert_eq!(batch, streamed, "{spec}");
        batch.0.validate(&tr).unwrap();
    }
}

#[test]
fn events_describe_the_reported_schedule() {
    // Event streams are a faithful narration of the report: one start and
    // one finish per task, at the report's recorded cycles.
    let trace = gen::synthetic(gen::Case::Case3);
    for spec in BackendSpec::ALL {
        let backend = spec.build(8, &PicosConfig::balanced());
        let mut s = backend
            .open_with(SessionConfig {
                collect_events: true,
                ..SessionConfig::batch()
            })
            .unwrap();
        feed_trace(&mut *s, &trace).unwrap();
        // Events materialize as the session runs; drain after advancing
        // far past the makespan, then finish.
        s.advance_to(1 << 40);
        let mut events = Vec::new();
        s.drain_events(&mut events);
        let (r, _) = s.finish().unwrap();
        let mut starts = vec![None; trace.len()];
        let mut finishes = vec![None; trace.len()];
        for e in &events {
            match *e {
                SimEvent::TaskStarted { task, at } => starts[task as usize] = Some(at),
                SimEvent::TaskFinished { task, at } => finishes[task as usize] = Some(at),
                SimEvent::ShardMsg { .. } => {}
            }
        }
        for i in 0..trace.len() {
            assert_eq!(starts[i], Some(r.start[i]), "{spec} task {i} start");
            assert_eq!(finishes[i], Some(r.end[i]), "{spec} task {i} end");
        }
    }
}
