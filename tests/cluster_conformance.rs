//! Cluster conformance suite (extends the `golden_timing` pattern).
//!
//! The load-bearing pin: a **one-shard cluster is cycle-identical to
//! `HilMode::HwOnly`** — same makespan, same per-task start/end times, same
//! execution order, and the same hardware counters — on every synthetic
//! testcase and the golden cholesky/sparselu workloads, across all three
//! DM designs. Any drift in either driver breaks this suite loudly.
//!
//! Multi-shard runs cannot be cycle-compared against anything, so they are
//! pinned on the invariants that must hold for *any* shard count:
//! TaskGraph-order legality, completeness, and determinism.

use picos_backend::BackendSpec;
use picos_cluster::{run_cluster_with_stats, ClusterConfig, ShardPolicy};
use picos_core::{DmDesign, PicosConfig};
use picos_hil::{run_hil_with_stats, HilConfig, HilMode};
use picos_trace::{gen, Trace};

const WORKERS: usize = 12;

/// Every workload the golden-timing suite pins, plus the stream generator.
fn golden_workloads() -> Vec<(String, Trace)> {
    let mut out: Vec<(String, Trace)> = gen::Case::ALL
        .into_iter()
        .map(|c| (format!("{c:?}"), gen::synthetic(c)))
        .collect();
    out.push((
        "cholesky256".into(),
        gen::cholesky(gen::CholeskyConfig::paper(256)),
    ));
    out.push((
        "sparselu128".into(),
        gen::sparselu(gen::SparseLuConfig::paper(128)),
    ));
    out.push(("stream".into(), gen::stream(gen::StreamConfig::heavy(400))));
    out
}

#[test]
fn one_shard_cluster_is_cycle_identical_to_hw_only() {
    for (label, trace) in golden_workloads() {
        for dm in DmDesign::ALL {
            let hil_cfg = HilConfig {
                picos: PicosConfig::baseline(dm),
                ..HilConfig::balanced(WORKERS)
            };
            let (hw, hw_stats) =
                run_hil_with_stats(&trace, HilMode::HwOnly, &hil_cfg).expect("HW-only completes");
            let cluster_cfg = ClusterConfig {
                picos: PicosConfig::baseline(dm),
                ..ClusterConfig::balanced(1, WORKERS)
            };
            let (cl, cl_stats) =
                run_cluster_with_stats(&trace, &cluster_cfg).expect("cluster completes");
            assert_eq!(cl_stats.len(), 1);
            assert_eq!(
                cl.makespan, hw.makespan,
                "{label} {dm}: makespan drifted (cluster {} vs hw-only {})",
                cl.makespan, hw.makespan
            );
            assert_eq!(cl.order, hw.order, "{label} {dm}: execution order drifted");
            assert_eq!(cl.start, hw.start, "{label} {dm}: start times drifted");
            assert_eq!(cl.end, hw.end, "{label} {dm}: end times drifted");
            assert_eq!(
                cl_stats[0], hw_stats,
                "{label} {dm}: hardware counters drifted"
            );
        }
    }
}

#[test]
fn one_shard_backend_matches_hw_only_backend() {
    // Through the ExecBackend layer too: the boxed cluster backend at one
    // shard must agree with the boxed HW-only backend.
    let trace = gen::cholesky(gen::CholeskyConfig::paper(128));
    let picos = PicosConfig::balanced();
    let hw = BackendSpec::Picos(HilMode::HwOnly)
        .build(8, &picos)
        .run(&trace)
        .unwrap();
    let cl = BackendSpec::Cluster(1)
        .build(8, &picos)
        .run(&trace)
        .unwrap();
    assert_eq!(cl.makespan, hw.makespan);
    assert_eq!(cl.order, hw.order);
}

#[test]
fn every_shard_count_preserves_task_graph_order() {
    for (label, trace) in golden_workloads() {
        let graph = picos_trace::TaskGraph::build(&trace);
        for shards in [2usize, 4] {
            let cfg = ClusterConfig::balanced(shards, WORKERS.max(shards));
            let (r, stats) = run_cluster_with_stats(&trace, &cfg)
                .unwrap_or_else(|e| panic!("{label} x{shards}: {e}"));
            assert_eq!(r.order.len(), trace.len(), "{label} x{shards}: incomplete");
            assert!(
                graph.is_topological(&r.order),
                "{label} x{shards}: order violates the dataflow graph"
            );
            r.validate(&trace)
                .unwrap_or_else(|e| panic!("{label} x{shards}: {e}"));
            let total = picos_cluster::merged_stats(&stats);
            assert_eq!(total.tasks_completed, total.tasks_submitted);
        }
    }
}

#[test]
fn placement_policies_agree_on_legality() {
    let trace = gen::stream(gen::StreamConfig::heavy(800));
    let graph = picos_trace::TaskGraph::build(&trace);
    for policy in ShardPolicy::ALL {
        let cfg = ClusterConfig {
            policy,
            ..ClusterConfig::balanced(4, 16)
        };
        let (r, _) =
            run_cluster_with_stats(&trace, &cfg).unwrap_or_else(|e| panic!("{policy}: {e}"));
        assert!(graph.is_topological(&r.order), "{policy}: illegal order");
    }
}

#[test]
fn cluster_is_deterministic_through_the_backend() {
    let trace = gen::stream(gen::StreamConfig::heavy(500));
    let picos = PicosConfig::balanced();
    let backend = BackendSpec::Cluster(4).build(16, &picos);
    let a = backend.run(&trace).unwrap();
    let b = backend.run(&trace).unwrap();
    assert_eq!(a, b);
}

/// Thread counts the parallel-engine pins run at. Defaults to every count
/// in `1..=8`; `CLUSTER_TEST_THREADS=2,8` narrows the sweep (CI runs the
/// suite twice, once per thread count, with
/// `PICOS_CLUSTER_FORCE_THREADS=1` so real OS threads are exercised even
/// on single-core runners).
fn test_thread_counts() -> Vec<usize> {
    match std::env::var("CLUSTER_TEST_THREADS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CLUSTER_TEST_THREADS: bad count"))
            .collect(),
        Err(_) => (1..=8).collect(),
    }
}

#[test]
fn parallel_engine_is_bit_identical_on_every_golden_workload() {
    // The conservative-parallel engine must be indistinguishable from the
    // serial reference — same makespan, same schedule, same per-task
    // times, same hardware counters — on every golden workload, every DM
    // design, and every thread count, with threads striding an 8-shard
    // cluster unevenly (8 % 3 != 0) as well as exactly.
    for (label, trace) in golden_workloads() {
        for dm in DmDesign::ALL {
            let cfg = ClusterConfig {
                picos: PicosConfig::baseline(dm),
                ..ClusterConfig::balanced(8, WORKERS)
            };
            let (serial, serial_stats) =
                run_cluster_with_stats(&trace, &cfg).expect("serial reference completes");
            for threads in test_thread_counts() {
                let cfg_t = cfg.clone().with_threads(threads);
                let (par, par_stats) = run_cluster_with_stats(&trace, &cfg_t)
                    .unwrap_or_else(|e| panic!("{label} {dm} t{threads}: {e}"));
                assert_eq!(
                    par.makespan, serial.makespan,
                    "{label} {dm} t{threads}: makespan drifted"
                );
                assert_eq!(
                    par.order, serial.order,
                    "{label} {dm} t{threads}: execution order drifted"
                );
                assert_eq!(
                    par.start, serial.start,
                    "{label} {dm} t{threads}: start times drifted"
                );
                assert_eq!(
                    par.end, serial.end,
                    "{label} {dm} t{threads}: end times drifted"
                );
                assert_eq!(
                    par_stats, serial_stats,
                    "{label} {dm} t{threads}: hardware counters drifted"
                );
            }
        }
    }
}

#[test]
fn parallel_engine_matches_serial_with_attached_timelines() {
    // Timed sessions probe global state mid-run, so the cluster falls
    // back to the serial engine whenever a sampler is attached; the
    // telemetry (and everything else) of a threads-N run must therefore
    // equal the serial run exactly. This pins the fallback: if the
    // parallel engine ever runs under a sampler and skews a window, this
    // breaks.
    use picos_backend::SessionConfig;
    let trace = gen::stream(gen::StreamConfig::heavy(600));
    let cfg = SessionConfig {
        timeline_window: Some(1_000),
        ..SessionConfig::batch()
    };
    let run = |threads: usize| {
        BackendSpec::Cluster(4)
            .builder(WORKERS)
            .threads(Some(threads))
            .build()
            .run_with_telemetry(&trace, cfg)
            .expect("cluster completes")
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        let par = run(threads);
        assert_eq!(par.report, serial.report, "t{threads}: report drifted");
        assert_eq!(par.stats, serial.stats, "t{threads}: counters drifted");
        assert_eq!(
            par.timeline, serial.timeline,
            "t{threads}: telemetry drifted"
        );
    }
}

#[test]
fn sharded_dm_beats_one_big_dm_under_sustained_load() {
    // The tentpole's raison d'être: open-loop arrival faster than one
    // Picos pipeline's task throughput. Four shards keep up where one
    // saturates — with the default (fast) interconnect, four shards must
    // finish the stream decisively earlier.
    let trace = gen::stream(gen::StreamConfig {
        interarrival: 15,
        mean_duration: 200,
        ..gen::StreamConfig::heavy(1_500)
    });
    let one = run_cluster_with_stats(&trace, &ClusterConfig::balanced(1, 16))
        .unwrap()
        .0;
    let four = run_cluster_with_stats(&trace, &ClusterConfig::balanced(4, 16))
        .unwrap()
        .0;
    assert!(
        (four.makespan as f64) < 0.9 * one.makespan as f64,
        "4 shards ({}) must beat 1 shard ({}) under sustained load",
        four.makespan,
        one.makespan
    );
}
