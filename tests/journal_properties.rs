//! Journal-under-rejection properties: a session journal records the
//! *accepted* input stream and nothing else.
//!
//! Backpressured offers (window full) and quota-rejected offers (serve
//! admission control) are retried by callers, so recording them would
//! double-submit on replay. These tests pin the invariant from both ends:
//! the journal written while driving a backpressured session contains
//! exactly the accepted ops, and replaying such a journal — itself under
//! pressure — re-records the identical journal.

use picos_repro::prelude::*;
use picos_repro::trace::KernelClass;
use picos_trace::rng::SplitMix64;

/// Drives `trace` through a journaled windowed session, riding out
/// backpressure with `step`. Returns the report, the journal and how many
/// offers were rejected.
fn drive_journaled(
    backend: &dyn ExecBackend,
    trace: &Trace,
    window: usize,
) -> (ExecReport, SessionJournal, u64) {
    let inner = backend.open_with(SessionConfig::windowed(window)).unwrap();
    let mut s = JournaledSession::new(inner);
    let mut rejected = 0u64;
    let mut barriers = trace.barriers().iter().peekable();
    for (i, task) in trace.iter().enumerate() {
        while barriers.peek() == Some(&&(i as u32)) {
            s.barrier();
            barriers.next();
        }
        while s.submit(task) == Admission::Backpressured {
            rejected += 1;
            assert!(s.step(), "{}: blocked session must drain", backend.name());
        }
    }
    let (inner, journal) = s.into_parts();
    let (r, _) = inner.finish().unwrap();
    (r, journal, rejected)
}

/// Rejected offers never reach the journal: for any random trace and a
/// window small enough to push back, the journal holds exactly one Submit
/// per trace task plus the barriers — however many times each offer was
/// retried.
#[test]
fn backpressured_offers_are_never_journaled() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x10A1u64.wrapping_mul(0x9e37).wrapping_add(case));
        let cfg = gen::RandomConfig {
            tasks: rng.range_usize(2, 80),
            addr_pool: rng.range_usize(1, 12),
            max_deps: rng.range_usize(0, 4),
            write_fraction: rng.f64(),
            max_duration: rng.range_u64(1, 500),
        };
        let seed = rng.range_u64(0, 999);
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            continue;
        }
        let window = rng.range_usize(1, 4);
        for spec in [
            BackendSpec::Perfect,
            BackendSpec::Nanos,
            BackendSpec::Cluster(2),
        ] {
            let backend = spec.build(2, &PicosConfig::balanced());
            let (r, journal, rejected) = drive_journaled(&*backend, &trace, window);
            assert_eq!(r.order.len(), trace.len(), "seed {seed} {spec}");
            assert_eq!(
                journal.submitted(),
                trace.len(),
                "seed {seed} {spec}: journal must hold exactly the accepted submits"
            );
            assert_eq!(
                journal.len(),
                trace.len() + trace.barriers().len(),
                "seed {seed} {spec}: rejected offers leaked into the journal \
                 ({rejected} rejections)"
            );
        }
    }
}

/// Replaying a journal under the same pressure re-records the identical
/// journal: replay retries backpressure internally, so no rejected op can
/// ever appear in a replayed journal either — recovery is closed under
/// itself.
#[test]
fn replayed_journals_never_contain_rejected_ops() {
    let mut trace = Trace::new("replay-pressure");
    for i in 0..120u64 {
        trace.push(
            KernelClass::GENERIC,
            [Dependence::inout(0x4000 + (i % 8) * 0x40)],
            200,
        );
        if i % 40 == 39 {
            trace.push_taskwait();
        }
    }
    for spec in BackendSpec::ALL {
        let backend = spec.build(4, &PicosConfig::balanced());
        let (solo, journal, rejected) = drive_journaled(&*backend, &trace, 3);
        assert!(rejected > 0, "{spec}: a 3-task window must push back");

        // Replay through a *fresh* journaling wrapper with the same tiny
        // window: the re-recorded journal must equal the original.
        let inner = backend.open_with(SessionConfig::windowed(3)).unwrap();
        let mut replayed = JournaledSession::new(inner);
        replay_journal(&mut replayed, &journal).unwrap();
        let (inner, rejournal) = replayed.into_parts();
        assert_eq!(
            rejournal, journal,
            "{spec}: replay re-recorded a different input stream"
        );
        let (r, _) = inner.finish().unwrap();
        assert_eq!(r.makespan, solo.makespan, "{spec}");
        assert_eq!(r.order, solo.order, "{spec}: replay must be bit-exact");
    }
}

/// The serve layer's admission quota sits *above* the session: offers
/// rejected for quota never reach the engine, so they can never be
/// journaled — the tenant journal always equals the accepted stream.
#[test]
fn serve_quota_rejections_are_never_journaled() {
    let mut svc = Service::new(ServeConfig {
        default_quota: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    svc.open("t", &TenantSpec::new(BackendSpec::Nanos, 4))
        .unwrap();
    let trace = gen::stream(gen::StreamConfig::heavy(64));
    let mut quota_rejections = 0u64;
    for task in trace.iter() {
        loop {
            match svc.submit("t", task).unwrap() {
                SubmitOutcome::Accepted => break,
                SubmitOutcome::Backpressured | SubmitOutcome::QuotaExceeded => {
                    quota_rejections += 1;
                    svc.run_round();
                }
            }
        }
        let journal = svc.journal("t").unwrap();
        assert!(
            journal.submitted() <= trace.len(),
            "journal grew past the accepted stream"
        );
    }
    assert!(
        quota_rejections > 0,
        "a 4-task quota over 64 tasks must reject"
    );
    assert_eq!(
        svc.journal("t").unwrap().submitted(),
        trace.len(),
        "quota rejections leaked into the journal"
    );
    svc.run_until_idle();
    let out = svc.close("t").unwrap();
    assert_eq!(out.report.order.len(), trace.len());
}
