//! Serve-layer conformance: multiplexing many tenants behind the fair
//! scheduler is *invisible* — every tenant's final schedule is
//! bit-identical to the same feed run solo, for any interleaving of
//! submissions and scheduler rounds; crash recovery replays journals to
//! the same bits; and the registry scales to a thousand live tenants.

use picos_repro::prelude::*;
use picos_repro::serve::schedule_digest;
use picos_repro::trace::KernelClass;
use picos_trace::rng::SplitMix64;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "picos-conf-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mixed fleet: every backend family, varying workers/windows, and
/// workloads spanning streams, random dependence patterns and barriers.
fn fleet(n: usize, seed: u64) -> Vec<(String, TenantSpec, Trace)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let backend = BackendSpec::ALL[i % BackendSpec::ALL.len()];
            let mut spec = TenantSpec::new(backend, 2 + i % 3);
            if i % 3 == 1 {
                // A tight engine window so the interleaving exercises
                // window rejections, not just clean accepts.
                spec.window = Some(2 + i % 4);
            }
            let mut trace = match i % 3 {
                0 => gen::stream(gen::StreamConfig::heavy(20 + i * 3)),
                1 => gen::random_trace(
                    gen::RandomConfig {
                        tasks: 15 + i,
                        addr_pool: 6,
                        max_deps: 3,
                        write_fraction: 0.4,
                        max_duration: 400,
                    },
                    rng.range_u64(0, 999),
                ),
                _ => {
                    let mut t = Trace::new("barriered");
                    for j in 0..18u64 {
                        t.push(
                            KernelClass::GENERIC,
                            [Dependence::inout(0x9000 + (j % 5) * 0x40)],
                            150 + j * 10,
                        );
                        if j % 6 == 5 {
                            t.push_taskwait();
                        }
                    }
                    t
                }
            };
            trace.calibrate_to(40_000 + rng.range_u64(0, 20_000));
            (format!("tenant{i:02}"), spec, trace)
        })
        .collect()
}

/// The solo reference: the same spec's backend fed by a lone driver under
/// the tenant's *effective* session configuration (the window a tenant
/// runs with is part of its timing semantics, so the solo run opens with
/// the same one).
fn solo_report(spec: &TenantSpec, trace: &Trace) -> ExecReport {
    let backend = spec.build_backend();
    let cfg = spec.effective_session_config(ServeConfig::default().default_quota);
    let mut s = backend.open_with(cfg).unwrap();
    feed_trace(&mut *s, trace).unwrap();
    let (r, _) = s.finish().unwrap();
    r
}

/// One tenant's feed cursor: tasks plus pending barrier declarations.
struct Feed {
    name: String,
    trace: Trace,
    next: usize,
    barriers: Vec<u32>,
}

impl Feed {
    fn new(name: &str, trace: &Trace) -> Feed {
        Feed {
            name: name.to_string(),
            trace: trace.clone(),
            next: 0,
            barriers: trace.barriers().to_vec(),
        }
    }

    fn done(&self) -> bool {
        self.next >= self.trace.len()
    }

    /// Feeds the next task (with any barrier due before it), riding out
    /// rejections with scheduler rounds.
    fn feed_one(&mut self, svc: &mut Service) {
        while self.barriers.first() == Some(&(self.next as u32)) {
            svc.barrier(&self.name).unwrap();
            self.barriers.remove(0);
        }
        let task = self.trace.tasks()[self.next].clone();
        loop {
            match svc.submit(&self.name, &task).unwrap() {
                SubmitOutcome::Accepted => break,
                _ => {
                    svc.run_round();
                }
            }
        }
        self.next += 1;
    }
}

/// Eight tenants — every backend family, mixed workloads, tight windows —
/// fed in a seeded random interleaving with scheduler rounds and event
/// drains mixed in: every close is bit-identical to the solo run.
#[test]
fn multiplexed_tenants_match_solo_bit_exactly() {
    for seed in [11u64, 42, 1337] {
        let fleet = fleet(8, seed);
        let solos: Vec<ExecReport> = fleet
            .iter()
            .map(|(_, spec, trace)| solo_report(spec, trace))
            .collect();

        let mut svc = Service::new(ServeConfig::default()).unwrap();
        for (name, spec, _) in &fleet {
            svc.open(name, spec).unwrap();
        }
        let mut feeds: Vec<Feed> = fleet
            .iter()
            .map(|(name, _, trace)| Feed::new(name, trace))
            .collect();

        // Random interleaving: pick a live feed, push one task; sprinkle
        // scheduler rounds and event drains between submissions.
        let mut rng = SplitMix64::new(seed ^ 0x5e12);
        let mut events = Vec::new();
        while feeds.iter().any(|f| !f.done()) {
            let live: Vec<usize> = (0..feeds.len()).filter(|&i| !feeds[i].done()).collect();
            let pick = live[rng.range_usize(0, live.len() - 1)];
            feeds[pick].feed_one(&mut svc);
            if rng.bool(0.3) {
                svc.run_round();
            }
            if rng.bool(0.1) {
                let name = feeds[pick].name.clone();
                svc.drain_events(&name, &mut events).unwrap();
            }
        }

        // Close in a shuffled order; each must match its solo run.
        let mut order: Vec<usize> = (0..fleet.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.range_usize(0, i));
        }
        for &i in &order {
            let (name, _, trace) = &fleet[i];
            let out = svc.close(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out.report.order.len(), trace.len(), "seed {seed} {name}");
            assert_eq!(
                out.report.makespan, solos[i].makespan,
                "seed {seed} {name}: multiplexed makespan diverged"
            );
            assert_eq!(
                schedule_digest(&out.report),
                schedule_digest(&solos[i]),
                "seed {seed} {name}: multiplexed schedule diverged from solo"
            );
        }
        assert!(svc.is_empty());
    }
}

/// Crash recovery end to end: 16 journaled tenants, killed mid-stream at
/// random split points, recovered by a fresh service, continued live —
/// and every final schedule is bit-identical to the uninterrupted run.
#[test]
fn crash_recovery_is_bit_exact_for_sixteen_tenants() {
    let dir = scratch("recovery");
    let cfg = || ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let fleet = fleet(16, 77);
    let solos: Vec<ExecReport> = fleet
        .iter()
        .map(|(_, spec, trace)| solo_report(spec, trace))
        .collect();
    let mut rng = SplitMix64::new(0xC4A5);

    // Phase 1: feed a random prefix of every tenant, flush, then "crash"
    // (drop without closing).
    let mut splits = Vec::new();
    {
        let mut svc = Service::new(cfg()).unwrap();
        for (name, spec, _) in &fleet {
            svc.open(name, spec).unwrap();
        }
        let mut feeds: Vec<Feed> = fleet
            .iter()
            .map(|(name, _, trace)| Feed::new(name, trace))
            .collect();
        for f in &mut feeds {
            let split = rng.range_usize(1, f.trace.len() - 1);
            while f.next < split {
                f.feed_one(&mut svc);
            }
            splits.push(split);
        }
        svc.run_round();
        svc.flush_journals().unwrap();
        // svc dropped here: the crash. No close, no finish.
    }

    // Phase 2: a fresh process recovers every tenant from its journal and
    // the feed continues where it left off.
    let mut svc = Service::new(cfg()).unwrap();
    assert!(
        svc.recovery_errors().is_empty(),
        "recovery failures: {:?}",
        svc.recovery_errors()
    );
    assert_eq!(svc.len(), fleet.len(), "all sixteen tenants must come back");
    let mut feeds: Vec<Feed> = fleet
        .iter()
        .zip(&splits)
        .map(|((name, _, trace), &split)| {
            assert_eq!(
                svc.journal(name).unwrap().submitted(),
                split,
                "{name}: journal must hold exactly the pre-crash prefix"
            );
            let mut f = Feed::new(name, trace);
            // Skip what the journal already replayed (tasks and the
            // barriers declared before the split).
            f.next = split;
            f.barriers.retain(|&b| b as usize >= split);
            f
        })
        .collect();
    while feeds.iter().any(|f| !f.done()) {
        let live: Vec<usize> = (0..feeds.len()).filter(|&i| !feeds[i].done()).collect();
        let pick = live[rng.range_usize(0, live.len() - 1)];
        feeds[pick].feed_one(&mut svc);
        if rng.bool(0.25) {
            svc.run_round();
        }
    }
    for (i, (name, _, trace)) in fleet.iter().enumerate() {
        let out = svc.close(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(out.report.order.len(), trace.len(), "{name}");
        assert_eq!(
            schedule_digest(&out.report),
            schedule_digest(&solos[i]),
            "{name}: recovered run diverged from the uninterrupted one"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scale smoke: a thousand concurrent stream tenants under the default
/// admission quota, all fed, drained and closed with correct schedules.
#[test]
fn a_thousand_live_tenants() {
    let mut svc = Service::new(ServeConfig::default()).unwrap();
    let trace = gen::stream(gen::StreamConfig::heavy(8));
    for i in 0..1000 {
        svc.open(
            &format!("s{i:04}"),
            &TenantSpec::new(BackendSpec::Perfect, 2),
        )
        .unwrap();
    }
    assert_eq!(svc.len(), 1000);
    for task in trace.iter() {
        for i in 0..1000 {
            let name = format!("s{i:04}");
            while svc.submit(&name, task).unwrap() != SubmitOutcome::Accepted {
                svc.run_round();
            }
        }
    }
    svc.run_until_idle();
    let scrape = svc.scrape();
    assert_eq!(scrape.service.value("serve.tenants_live"), Some(1000));
    let reference = solo_report(&TenantSpec::new(BackendSpec::Perfect, 2), &trace);
    for i in 0..1000 {
        let out = svc.close(&format!("s{i:04}")).unwrap();
        assert_eq!(out.report.order.len(), trace.len());
        assert_eq!(schedule_digest(&out.report), schedule_digest(&reference));
    }
    assert!(svc.is_empty());
}
