//! Golden timing snapshots: cycle-exact pins of the discrete-event core.
//!
//! Every row pins the makespan and the key hardware counters of one
//! workload × DM-design cell under `PicosConfig::baseline`. The table was
//! captured from the engine *before* the timing-wheel rewrite, so these
//! tests prove the rewritten event core is cycle-identical to the original
//! `BinaryHeap` + `schedule_all` engine — and they fail loudly on any
//! future change that silently shifts cycle counts.
//!
//! Regenerate (after an *intentional* timing change) with:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test golden_timing -- --nocapture
//! ```
//!
//! and paste the printed rows over the `GOLDEN` table below.

use picos_core::{DmDesign, FinishedReq, PicosConfig, PicosSystem, Stats};
use picos_hil::{run_hil_with_stats, HilConfig, HilMode};
use picos_trace::{gen, TaskGraph, Trace};

/// One pinned cell: workload label, DM design, makespan, counters.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    workload: &'static str,
    dm: DmDesign,
    makespan: u64,
    deps_processed: u64,
    dm_conflicts: u64,
    vm_stalls: u64,
    tm_stalls: u64,
    wakes_sent: u64,
    chain_wakes: u64,
    peak_ready: usize,
    peak_in_flight: usize,
    busy_gw: u64,
    busy_trs: u64,
    busy_dct: u64,
    busy_arb: u64,
    busy_ts: u64,
}

impl Golden {
    fn capture(workload: &'static str, dm: DmDesign, makespan: u64, s: &Stats) -> Self {
        Golden {
            workload,
            dm,
            makespan,
            deps_processed: s.deps_processed,
            dm_conflicts: s.dm_conflicts,
            vm_stalls: s.vm_stalls,
            tm_stalls: s.tm_stalls,
            wakes_sent: s.wakes_sent,
            chain_wakes: s.chain_wakes,
            peak_ready: s.peak_ready,
            peak_in_flight: s.peak_in_flight,
            busy_gw: s.busy_gw,
            busy_trs: s.busy_trs,
            busy_dct: s.busy_dct,
            busy_arb: s.busy_arb,
            busy_ts: s.busy_ts,
        }
    }

    fn print_row(&self) {
        println!(
            "    g({:?}, DmDesign::{:?}, {}, &[{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}]),",
            self.workload,
            self.dm,
            self.makespan,
            self.deps_processed,
            self.dm_conflicts,
            self.vm_stalls,
            self.tm_stalls,
            self.wakes_sent,
            self.chain_wakes,
            self.peak_ready,
            self.peak_in_flight,
            self.busy_gw,
            self.busy_trs,
            self.busy_dct,
            self.busy_arb,
            self.busy_ts
        );
    }
}

/// Compact golden-row constructor so the pinned table stays readable.
fn g(workload: &'static str, dm: DmDesign, makespan: u64, c: &[u64; 13]) -> Golden {
    Golden {
        workload,
        dm,
        makespan,
        deps_processed: c[0],
        dm_conflicts: c[1],
        vm_stalls: c[2],
        tm_stalls: c[3],
        wakes_sent: c[4],
        chain_wakes: c[5],
        peak_ready: c[6] as usize,
        peak_in_flight: c[7] as usize,
        busy_gw: c[8],
        busy_trs: c[9],
        busy_dct: c[10],
        busy_arb: c[11],
        busy_ts: c[12],
    }
}

/// Runs a trace through the bare engine with instant workers; returns the
/// final simulation time, the stats, and the execution order.
fn run_engine(cfg: PicosConfig, trace: &Trace) -> (u64, Stats, Vec<u32>) {
    let mut sys = PicosSystem::new(cfg);
    sys.submit_all(trace);
    let mut order = Vec::with_capacity(trace.len());
    sys.run_to_quiescence(200_000_000, |r| {
        order.push(r.task.raw());
        Some(FinishedReq {
            task: r.task,
            slot: r.slot,
        })
    })
    .expect("golden run must complete");
    (sys.now(), sys.stats(), order)
}

fn current_rows() -> Vec<Golden> {
    let mut rows = Vec::new();
    // Bare engine, instant workers: all seven synthetic cases.
    for case in gen::Case::ALL {
        let trace = gen::synthetic(case);
        let graph = TaskGraph::build(&trace);
        for dm in DmDesign::ALL {
            let label: &'static str = match case {
                gen::Case::Case1 => "case1",
                gen::Case::Case2 => "case2",
                gen::Case::Case3 => "case3",
                gen::Case::Case4 => "case4",
                gen::Case::Case5 => "case5",
                gen::Case::Case6 => "case6",
                gen::Case::Case7 => "case7",
            };
            let (makespan, stats, order) = run_engine(PicosConfig::baseline(dm), &trace);
            assert_eq!(order.len(), trace.len(), "{label} {dm} incomplete");
            assert!(graph.is_topological(&order), "{label} {dm} order illegal");
            rows.push(Golden::capture(label, dm, makespan, &stats));
        }
    }
    // Full HIL platform (HW-only): the two apps the acceptance pins.
    let apps: [(&'static str, Trace); 2] = [
        (
            "cholesky256",
            gen::cholesky(gen::CholeskyConfig::paper(256)),
        ),
        (
            "sparselu128",
            gen::sparselu(gen::SparseLuConfig::paper(128)),
        ),
    ];
    for (label, trace) in &apps {
        for dm in DmDesign::ALL {
            let cfg = HilConfig {
                picos: PicosConfig::baseline(dm),
                ..HilConfig::balanced(12)
            };
            let (report, stats) =
                run_hil_with_stats(trace, HilMode::HwOnly, &cfg).expect("HIL run completes");
            report.validate(trace).expect("order must be legal");
            rows.push(Golden::capture(label, dm, report.makespan, &stats));
        }
    }
    rows
}

fn golden_rows() -> Vec<Golden> {
    vec![
        // ===== BEGIN GOLDEN TABLE (captured pre-rewrite) =====
        g(
            "case1",
            DmDesign::EightWay,
            1522,
            &[0, 0, 0, 0, 0, 0, 1, 3, 1600, 1300, 0, 0, 400],
        ),
        g(
            "case1",
            DmDesign::SixteenWay,
            1522,
            &[0, 0, 0, 0, 0, 0, 1, 3, 1600, 1300, 0, 0, 400],
        ),
        g(
            "case1",
            DmDesign::PearsonEightWay,
            1522,
            &[0, 0, 0, 0, 0, 0, 1, 3, 1600, 1300, 0, 0, 400],
        ),
        g(
            "case2",
            DmDesign::EightWay,
            2439,
            &[100, 0, 0, 0, 0, 0, 1, 36, 1700, 1800, 2600, 200, 400],
        ),
        g(
            "case2",
            DmDesign::SixteenWay,
            2439,
            &[100, 0, 0, 0, 0, 0, 1, 36, 1700, 1800, 2600, 200, 400],
        ),
        g(
            "case2",
            DmDesign::PearsonEightWay,
            2439,
            &[100, 0, 0, 0, 0, 0, 1, 36, 1700, 1800, 2600, 200, 400],
        ),
        g(
            "case3",
            DmDesign::EightWay,
            24881,
            &[1500, 0, 0, 0, 0, 0, 1, 89, 3100, 8800, 27800, 3000, 400],
        ),
        g(
            "case3",
            DmDesign::SixteenWay,
            24881,
            &[1500, 0, 0, 0, 0, 0, 1, 89, 3100, 8800, 27800, 3000, 400],
        ),
        g(
            "case3",
            DmDesign::PearsonEightWay,
            24881,
            &[1500, 0, 0, 0, 0, 0, 1, 89, 3100, 8800, 27800, 3000, 400],
        ),
        g(
            "case4",
            DmDesign::EightWay,
            2668,
            &[100, 0, 0, 0, 99, 0, 1, 56, 1700, 1899, 2600, 299, 400],
        ),
        g(
            "case4",
            DmDesign::SixteenWay,
            2668,
            &[100, 0, 0, 0, 99, 0, 1, 56, 1700, 1899, 2600, 299, 400],
        ),
        g(
            "case4",
            DmDesign::PearsonEightWay,
            2668,
            &[100, 0, 0, 0, 99, 0, 1, 56, 1700, 1899, 2600, 299, 400],
        ),
        g(
            "case5",
            DmDesign::EightWay,
            4442,
            &[220, 0, 0, 0, 10, 0, 1, 65, 1980, 2540, 4840, 450, 440],
        ),
        g(
            "case5",
            DmDesign::SixteenWay,
            4442,
            &[220, 0, 0, 0, 10, 0, 1, 65, 1980, 2540, 4840, 450, 440],
        ),
        g(
            "case5",
            DmDesign::PearsonEightWay,
            4442,
            &[220, 0, 0, 0, 10, 0, 1, 65, 1980, 2540, 4840, 450, 440],
        ),
        g(
            "case6",
            DmDesign::EightWay,
            4279,
            &[210, 0, 0, 0, 21, 0, 1, 66, 1970, 2501, 4660, 441, 440],
        ),
        g(
            "case6",
            DmDesign::SixteenWay,
            4279,
            &[210, 0, 0, 0, 21, 0, 1, 66, 1970, 2501, 4660, 441, 440],
        ),
        g(
            "case6",
            DmDesign::PearsonEightWay,
            4279,
            &[210, 0, 0, 0, 21, 0, 1, 66, 1970, 2501, 4660, 441, 440],
        ),
        g(
            "case7",
            DmDesign::EightWay,
            18469,
            &[1100, 0, 0, 0, 0, 0, 1, 87, 2700, 6800, 20600, 2200, 400],
        ),
        g(
            "case7",
            DmDesign::SixteenWay,
            18469,
            &[1100, 0, 0, 0, 0, 0, 1, 87, 2700, 6800, 20600, 2200, 400],
        ),
        g(
            "case7",
            DmDesign::PearsonEightWay,
            18469,
            &[1100, 0, 0, 0, 0, 0, 1, 87, 2700, 6800, 20600, 2200, 400],
        ),
        g(
            "cholesky256",
            DmDesign::EightWay,
            111475201,
            &[288, 3, 0, 0, 105, 127, 13, 120, 2208, 3232, 6144, 808, 480],
        ),
        g(
            "cholesky256",
            DmDesign::SixteenWay,
            115934211,
            &[288, 0, 0, 0, 119, 133, 16, 120, 2208, 3252, 6144, 828, 480],
        ),
        g(
            "cholesky256",
            DmDesign::PearsonEightWay,
            115934211,
            &[288, 0, 0, 0, 119, 133, 16, 120, 2208, 3252, 6144, 828, 480],
        ),
        g(
            "sparselu128",
            DmDesign::EightWay,
            98735531,
            &[
                1304, 83, 0, 136, 173, 301, 9, 256, 9112, 13338, 27376, 3082, 1952,
            ],
        ),
        g(
            "sparselu128",
            DmDesign::SixteenWay,
            108422939,
            &[
                1304, 41, 0, 83, 373, 596, 34, 256, 9112, 13833, 27376, 3577, 1952,
            ],
        ),
        g(
            "sparselu128",
            DmDesign::PearsonEightWay,
            113639359,
            &[
                1304, 0, 0, 48, 487, 673, 52, 256, 9112, 14024, 27376, 3768, 1952,
            ],
        ),
        // ===== END GOLDEN TABLE =====
    ]
}

#[test]
fn timing_matches_pre_rewrite_golden_snapshots() {
    let current = current_rows();
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for row in &current {
            row.print_row();
        }
        return;
    }
    let golden = golden_rows();
    assert_eq!(
        current.len(),
        golden.len(),
        "row count drifted; regenerate with GOLDEN_PRINT=1"
    );
    for (c, g) in current.iter().zip(&golden) {
        assert_eq!(c, g, "cycle counts shifted for {} / {}", g.workload, g.dm);
    }
}
