//! Span-log conformance: lifecycle tracing is deterministic,
//! observation-only and consistent with the schedule.
//!
//! The promises of the span-tracing layer pinned here, across every
//! backend family:
//!
//! 1. **Observation only** — opening a session with
//!    [`SessionConfig::trace_spans`] changes no cycle: report, hardware
//!    counters and timeline are bit-equal to the untraced run.
//! 2. **Thread-count independence** — serial and parallel cluster drives
//!    record the same event multiset; after [`span::SpanLog::canonical_sort`]
//!    the logs are bit-equal for any thread count.
//! 3. **Schedule consistency** — per-task `Started`/`Finished` stamps
//!    equal the [`ExecReport`] start/end arrays, and lifecycle events
//!    are monotone within each task.
//! 4. **Critical-path coverage** — the walker's category totals sum to
//!    the makespan exactly, on every backend that records spans.
//! 5. **Perfetto export** — the emitted Chrome Trace Event JSON parses
//!    through the in-tree codec and carries one exec slice per task.

use picos_repro::prelude::*;
use picos_repro::trace::{parse_json, Value};
use span::{SpanKind, SpanLog};

fn families() -> Vec<BackendSpec> {
    vec![
        BackendSpec::Perfect,
        BackendSpec::Nanos,
        BackendSpec::Picos(HilMode::HwOnly),
        BackendSpec::Picos(HilMode::FullSystem),
        BackendSpec::Cluster(2),
    ]
}

fn traced(spec: BackendSpec, trace: &Trace) -> SessionOutput {
    let backend = spec.build(8, &PicosConfig::balanced());
    backend
        .run_with_telemetry(trace, SessionConfig::batch().with_spans())
        .unwrap_or_else(|e| panic!("{spec}: {e}"))
}

/// The canonical log of one cluster run at a given thread count.
fn cluster_log(trace: &Trace, shards: usize, threads: usize) -> SpanLog {
    let backend = BackendSpec::Cluster(shards)
        .builder(8)
        .picos(&PicosConfig::balanced())
        .threads(Some(threads))
        .build();
    let mut log = backend
        .run_with_telemetry(trace, SessionConfig::batch().with_spans())
        .unwrap()
        .spans
        .expect("span tracing was requested");
    log.canonical_sort();
    log
}

#[test]
fn spans_are_observation_only_everywhere() {
    let trace = gen::cholesky(gen::CholeskyConfig::paper(128));
    for spec in families() {
        let backend = spec.build(8, &PicosConfig::balanced());
        let plain = backend
            .run_with_telemetry(&trace, SessionConfig::timed(500))
            .unwrap();
        let spanned = backend
            .run_with_telemetry(&trace, SessionConfig::timed(500).with_spans())
            .unwrap();
        assert_eq!(
            spanned.report, plain.report,
            "{spec}: spans changed a cycle"
        );
        assert_eq!(
            spanned.stats, plain.stats,
            "{spec}: spans changed a counter"
        );
        assert_eq!(
            spanned.timeline, plain.timeline,
            "{spec}: spans changed the timeline"
        );
        assert_eq!(
            spanned.metrics, plain.metrics,
            "{spec}: spans changed a metric"
        );
        assert!(plain.spans.is_none(), "{spec}: no spans were requested");
        let log = spanned
            .spans
            .unwrap_or_else(|| panic!("{spec}: spans were requested"));
        assert!(!log.is_empty(), "{spec}: a run records events");
        // Determinism: the same traced run records the same log.
        let again = backend
            .run_with_telemetry(&trace, SessionConfig::timed(500).with_spans())
            .unwrap();
        assert_eq!(again.spans.unwrap(), log, "{spec}: log not deterministic");
    }
}

#[test]
fn cluster_span_logs_are_thread_count_independent() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let serial = cluster_log(&trace, 4, 1);
    assert!(!serial.is_empty());
    for threads in [2, 4] {
        let par = cluster_log(&trace, 4, threads);
        assert_eq!(
            par, serial,
            "canonical span logs differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn span_timestamps_match_the_exec_report() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let out = traced(BackendSpec::Picos(HilMode::HwOnly), &trace);
    let log = out.spans.as_ref().expect("spans were requested");
    let n = trace.len();
    // Per-task extraction: the single-system HIL engine records every
    // lifecycle kind exactly once per task.
    let mut stamp = vec![[None::<u64>; 7]; n];
    for e in log.events() {
        let k = e.kind as usize;
        if k < 7 {
            let slot = &mut stamp[e.task as usize][k];
            assert!(
                slot.is_none(),
                "task {} records {} twice",
                e.task,
                e.kind.name()
            );
            *slot = Some(e.at);
        }
    }
    for (t, evs) in stamp.iter().enumerate() {
        let at =
            |k: SpanKind| evs[k as usize].unwrap_or_else(|| panic!("task {t}: no {}", k.name()));
        assert_eq!(at(SpanKind::Started), out.report.start[t], "task {t} start");
        assert_eq!(at(SpanKind::Finished), out.report.end[t], "task {t} end");
        // Lifecycle monotonicity along the pipeline.
        assert!(
            at(SpanKind::Submitted) <= at(SpanKind::DepsRegistered),
            "task {t}"
        );
        assert!(
            at(SpanKind::DepsRegistered) <= at(SpanKind::LastDepReleased),
            "task {t}"
        );
        assert!(
            at(SpanKind::LastDepReleased) <= at(SpanKind::Ready),
            "task {t}"
        );
        assert!(at(SpanKind::Ready) <= at(SpanKind::Dispatched), "task {t}");
        assert!(
            at(SpanKind::Dispatched) <= at(SpanKind::Started),
            "task {t}"
        );
        assert!(at(SpanKind::Started) <= at(SpanKind::Finished), "task {t}");
    }
}

#[test]
fn critical_path_totals_sum_to_the_makespan_on_every_backend() {
    let trace = gen::cholesky(gen::CholeskyConfig::paper(128));
    let graph = TaskGraph::build(&trace);
    for spec in families() {
        let out = traced(spec, &trace);
        let log = out.spans.as_ref().expect("spans were requested");
        let cp = span::critical_path(
            log,
            |t| graph.preds(TaskId::new(t)).to_vec(),
            out.report.makespan,
        )
        .unwrap_or_else(|| panic!("{spec}: walker found no finished task"));
        let attributed: u64 = cp.totals().iter().map(|&(_, v)| v).sum();
        assert_eq!(
            attributed, out.report.makespan,
            "{spec}: cycles must cover the makespan"
        );
        // Segments tile [0, makespan) contiguously in time order.
        let segs = &cp.segments;
        assert!(!segs.is_empty(), "{spec}");
        assert_eq!(segs[0].start, 0, "{spec}: chain starts at cycle 0");
        assert_eq!(segs.last().unwrap().end, out.report.makespan, "{spec}");
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "{spec}: segments must be contiguous");
        }
        // The rendered table reports the same coverage.
        let table = cp.table();
        assert!(
            table.starts_with(&format!(
                "critical path over {} cycles",
                out.report.makespan
            )),
            "{spec}: {table}"
        );
        // A real schedule executes work on the critical chain.
        assert!(cp.total(span::CpCategory::Exec) > 0, "{spec}");
    }
}

#[test]
fn fault_retries_appear_as_message_spans_and_stay_observation_only() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let plan = FaultPlan::new(7).with_drop_rate(0.05).with_link_timeout(64);
    let build = || {
        BackendSpec::Cluster(2)
            .builder(8)
            .picos(&PicosConfig::balanced())
            .faults(Some(plan.clone()))
            .build()
    };
    let plain = build().run(&trace).unwrap();
    let out = build()
        .run_with_telemetry(&trace, SessionConfig::batch().with_spans())
        .unwrap();
    assert_eq!(out.report, plain, "spans changed a faulty run");
    let log = out.spans.expect("spans were requested");
    let count = |k: SpanKind| log.events().iter().filter(|e| e.kind == k).count();
    assert!(count(SpanKind::MsgSend) > 0, "shards exchanged messages");
    assert!(count(SpanKind::MsgDeliver) > 0);
    assert!(
        count(SpanKind::MsgRetry) > 0,
        "a 5% drop rate must force retransmissions"
    );
    // Delivered packet ids echo sent ones: every delivery's packet id was
    // previously sent (id 0 marks plain unnumbered packets).
    let sent: std::collections::HashSet<u32> = log
        .events()
        .iter()
        .filter(|e| e.kind == SpanKind::MsgSend)
        .map(|e| e.arg)
        .collect();
    for e in log.events() {
        if e.kind == SpanKind::MsgDeliver && e.arg != 0 {
            assert!(sent.contains(&e.arg), "delivered unknown packet {}", e.arg);
        }
    }
}

#[test]
fn perfetto_export_roundtrips_through_the_in_tree_codec() {
    let trace = gen::sparselu(gen::SparseLuConfig::paper(128));
    let graph = TaskGraph::build(&trace);
    let mut edges = Vec::new();
    for t in 0..trace.len() as u32 {
        for &s in graph.succs(TaskId::new(t)) {
            edges.push((t, s));
        }
    }
    let render = |threads: usize| {
        let log = cluster_log(&trace, 2, threads);
        span::to_perfetto_json(&log, &edges)
    };
    let json = render(1);
    let root = parse_json(&json).expect("export must be valid JSON");
    let events = root
        .as_obj()
        .and_then(|o| o.get("traceEvents"))
        .and_then(Value::as_array)
        .expect("object format with a traceEvents array");
    assert!(!events.is_empty());
    let mut exec_slices = 0;
    let mut process_names = Vec::new();
    for e in events {
        let obj = e.as_obj().expect("every trace event is an object");
        let ph = obj.get("ph").and_then(Value::as_string).expect("ph");
        match ph {
            "X" => {
                // Complete slices carry a timestamp and a duration.
                assert!(obj.get("ts").and_then(Value::as_int).is_some());
                assert!(obj.get("dur").and_then(Value::as_int).is_some());
                if obj.get("cat").and_then(Value::as_string) == Some("task") {
                    exec_slices += 1;
                }
            }
            "M" if obj.get("name").and_then(Value::as_string) == Some("process_name") => {
                let name = obj
                    .get("args")
                    .and_then(Value::as_obj)
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_string)
                    .expect("metadata name");
                process_names.push(name.to_string());
            }
            _ => {}
        }
    }
    assert_eq!(exec_slices, trace.len(), "one exec slice per task");
    for expected in ["shard0", "shard1", "interconnect"] {
        assert!(
            process_names.iter().any(|n| n == expected),
            "missing process track {expected}: {process_names:?}"
        );
    }
    // Canonically sorted logs render byte-identically for any thread count.
    assert_eq!(render(2), json, "export must be thread-count independent");
}

#[test]
fn auto_window_targets_the_sample_budget() {
    for estimate in [0, 1, 63, 64, 1_000, 100_000, u64::MAX / 2] {
        let w = span::auto_window(estimate, 256);
        assert!(w >= 64, "floor window");
        assert!(w.is_power_of_two());
        assert!(
            estimate / w <= 256,
            "estimate {estimate}: window {w} overshoots"
        );
        if w > 64 {
            assert!(
                estimate / (w / 2) > 256,
                "window {w} not minimal for {estimate}"
            );
        }
    }
}
