//! Backpressure properties of the streaming-session API.
//!
//! The in-flight window is the session analogue of the paper's full-TRS
//! stall: when the admitted-but-unfinished population reaches the window,
//! `submit` must return `Backpressured` — exactly then, for every backend
//! family — and riding out backpressure with `step` must never lose a
//! task, even when the Picos core itself is squeezed down to a tiny
//! TM/TRS capacity underneath.

use picos_repro::prelude::*;
use picos_repro::trace::KernelClass;

/// Greedy windowed driver that checks the admission invariant at every
/// submission and returns how many submissions were backpressured.
fn drive_checked(backend: &dyn ExecBackend, trace: &Trace, window: usize) -> (ExecReport, u64) {
    let mut s = backend.open_with(SessionConfig::windowed(window)).unwrap();
    let mut backpressured = 0u64;
    let mut barriers = trace.barriers().iter().peekable();
    for (i, task) in trace.iter().enumerate() {
        while barriers.peek() == Some(&&(i as u32)) {
            s.barrier();
            barriers.next();
        }
        loop {
            let saturated = s.in_flight() >= window;
            match s.submit(task) {
                Admission::Accepted => {
                    assert!(
                        !saturated,
                        "{}: accepted while window full ({} in flight)",
                        backend.name(),
                        s.in_flight()
                    );
                    break;
                }
                Admission::Backpressured => {
                    assert!(
                        saturated,
                        "{}: backpressured below the window ({} in flight < {window})",
                        backend.name(),
                        s.in_flight()
                    );
                    backpressured += 1;
                    assert!(s.step(), "{}: blocked session must drain", backend.name());
                }
            }
        }
        assert!(s.in_flight() <= window, "{}", backend.name());
    }
    let (r, _) = s.finish().unwrap();
    (r, backpressured)
}

#[test]
fn submit_backpressures_exactly_at_the_window_on_every_backend() {
    let trace = gen::synthetic(gen::Case::Case2);
    for spec in BackendSpec::ALL {
        for window in [1usize, 3, 16] {
            let backend = spec.build(4, &PicosConfig::balanced());
            let (r, backpressured) = drive_checked(&*backend, &trace, window);
            assert_eq!(
                r.order.len(),
                trace.len(),
                "{spec} window {window}: tasks were dropped"
            );
            r.validate(&trace).unwrap();
            if window < trace.len() {
                assert!(
                    backpressured > 0,
                    "{spec} window {window}: a window below the task count must push back"
                );
            }
        }
    }
}

#[test]
fn tiny_tm_capacity_backpressures_but_never_drops() {
    // Squeeze the core: a TM with very few entries forces the GW to stall
    // accepting tasks (the paper's full-TRS condition) while the session
    // window throttles the client above it. Everything must still finish.
    let mut cfg = PicosConfig::balanced();
    cfg.tm_entries = 4;
    let mut trace = Trace::new("tm-squeeze");
    for i in 0..400u64 {
        trace.push(
            KernelClass::GENERIC,
            [Dependence::inout(0x1000 + (i % 16) * 0x40)],
            300,
        );
    }
    for spec in [
        BackendSpec::Picos(picos_repro::hil::HilMode::HwOnly),
        BackendSpec::Cluster(2),
    ] {
        let backend = spec.build(4, &cfg);
        let (r, backpressured) = drive_checked(&*backend, &trace, 8);
        assert_eq!(r.order.len(), 400, "{spec}: tasks were dropped");
        r.validate(&trace).unwrap();
        assert!(backpressured > 0, "{spec}: 8-task window must push back");
        // The hardware stall is visible in the counters too.
        let (_, stats) = backend.run_with_stats(&trace).unwrap();
        let stats = stats.unwrap();
        assert!(
            stats.tm_stalls > 0,
            "{spec}: a 4-entry TM must stall the gateway"
        );
    }
}

#[test]
fn window_one_serializes_admission() {
    // The tightest window: at most one task in flight; the session
    // degenerates to closed-loop submit-wait-complete.
    let trace = gen::synthetic(gen::Case::Case1);
    let backend = BackendSpec::Perfect.build(8, &PicosConfig::balanced());
    let mut s = backend.open_with(SessionConfig::windowed(1)).unwrap();
    for task in trace.iter() {
        loop {
            match s.submit(task) {
                Admission::Accepted => break,
                Admission::Backpressured => {
                    assert_eq!(s.in_flight(), 1);
                    assert!(s.step());
                }
            }
        }
    }
    let (r, _) = s.finish().unwrap();
    assert_eq!(r.order.len(), trace.len());
    // One at a time: tasks execute back to back, no overlap.
    assert_eq!(r.makespan, trace.sequential_time());
}

#[test]
fn settling_progress_that_frees_the_window_is_not_a_stall() {
    // Regression: with zero dispatch cost and zero-duration tasks, a task
    // started in one pump completes at the same cycle; the step() that
    // settles it frees the window and must count as progress — callers
    // treat false as a terminal stall (FeedStall / "paced driver
    // stalled").
    let mut trace = Trace::new("zero-cycle");
    for _ in 0..20 {
        trace.push(KernelClass::GENERIC, [], 0);
    }
    let mut hil_cfg = picos_repro::hil::HilConfig::balanced(1);
    hil_cfg.cost.dispatch = 0;
    let backend = picos_repro::backend::PicosBackend {
        mode: picos_repro::hil::HilMode::HwOnly,
        cfg: hil_cfg,
    };
    let mut s = backend.open_with(SessionConfig::windowed(1)).unwrap();
    feed_trace(&mut *s, &trace).expect("no spurious FeedStall");
    let (r, _) = s.finish().unwrap();
    assert_eq!(r.order.len(), 20);
}

#[test]
fn tiny_windows_coexist_with_taskwaits() {
    // A 1-task window across taskwait boundaries: admitted tasks always
    // drain (in-flight work produces events), so even the tightest window
    // completes barriered traces through the standard feed helper.
    let mut trace = Trace::new("undersized-window");
    let k = KernelClass::GENERIC;
    trace.push(k, [], 100);
    trace.push(k, [], 100);
    trace.push_taskwait();
    trace.push(k, [], 100);
    for spec in BackendSpec::ALL {
        let backend = spec.build(4, &PicosConfig::balanced());
        let mut s = backend.open_with(SessionConfig::windowed(1)).unwrap();
        feed_trace(&mut *s, &trace).unwrap();
        let (r, _) = s.finish().unwrap();
        assert_eq!(r.order.len(), 3, "{spec}");
        r.validate(&trace).unwrap();
    }
}
