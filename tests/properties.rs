//! Property-based tests over random traces: the invariants every engine
//! must hold for *any* hardware-representable workload, not just the
//! paper's benchmarks.
//!
//! Cases are drawn from a seeded [`SplitMix64`] (the offline stand-in for
//! `proptest`); every assertion names the case seed so a failure replays
//! exactly with `gen::random_trace(cfg, seed)`.

use picos_repro::prelude::*;
use picos_trace::rng::SplitMix64;

/// Draws a random-trace configuration matching the old proptest strategy.
fn arb_config(rng: &mut SplitMix64) -> gen::RandomConfig {
    gen::RandomConfig {
        tasks: rng.range_usize(1, 149),
        addr_pool: rng.range_usize(1, 23),
        max_deps: rng.range_usize(0, 7),
        write_fraction: rng.f64(),
        max_duration: rng.range_u64(1, 1_999),
    }
}

/// Runs `f` over `cases` pseudo-random (config, trace-seed) pairs.
fn for_cases(test_tag: u64, cases: u64, mut f: impl FnMut(gen::RandomConfig, u64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(test_tag.wrapping_mul(0x9e37) + case);
        let cfg = arb_config(&mut rng);
        let seed = rng.range_u64(0, 999);
        f(cfg, seed);
    }
}

/// The Picos platform never deadlocks on random traces and always
/// produces a legal schedule, in every mode.
#[test]
fn picos_never_deadlocks() {
    for_cases(1, 48, |cfg, seed| {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return;
        }
        let mut wrng = SplitMix64::new(seed);
        let workers = wrng.range_usize(1, 15);
        for mode in HilMode::ALL {
            let r = run_hil(&trace, mode, &HilConfig::balanced(workers))
                .unwrap_or_else(|e| panic!("seed {seed} {mode}: {e}"));
            assert_eq!(r.order.len(), trace.len(), "seed {seed} {mode}");
            r.validate(&trace)
                .unwrap_or_else(|e| panic!("seed {seed}: illegal schedule in {mode}: {e}"));
        }
    });
}

/// Same for the software runtime.
#[test]
fn software_runtime_never_sticks() {
    for_cases(2, 48, |cfg, seed| {
        let trace = gen::random_trace(cfg, seed);
        let mut wrng = SplitMix64::new(seed);
        let workers = wrng.range_usize(1, 23);
        let r = run_software(&trace, SwRuntimeConfig::with_workers(workers))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        r.validate(&trace)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    });
}

/// Perfect-scheduler bounds: critical path <= makespan <= total work;
/// makespan * workers >= total work is NOT required (idle tails), but
/// the work bound per worker is.
#[test]
fn perfect_bounds() {
    for_cases(3, 48, |cfg, seed| {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return;
        }
        let mut wrng = SplitMix64::new(seed);
        let workers = wrng.range_usize(1, 31);
        let graph = TaskGraph::build(&trace);
        let r = perfect_schedule(&trace, workers);
        assert!(r.makespan >= graph.critical_path(), "seed {seed}");
        assert!(
            r.makespan >= trace.sequential_time().div_ceil(workers as u64),
            "seed {seed}"
        );
        assert!(r.makespan <= trace.sequential_time(), "seed {seed}");
        r.validate(&trace)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    });
}

/// Adding workers never slows the perfect scheduler down by more than
/// the list-scheduling anomaly bound (factor 2).
#[test]
fn perfect_anomaly_bounded() {
    for_cases(4, 48, |cfg, seed| {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return;
        }
        let m4 = perfect_schedule(&trace, 4).makespan;
        let m8 = perfect_schedule(&trace, 8).makespan;
        assert!(
            m8 <= 2 * m4,
            "seed {seed}: anomaly beyond Graham bound: {m8} vs {m4}"
        );
    });
}

/// All DM designs complete with identical task counts on any workload
/// (on arbitrary layouts all designs are valid; only timing differs).
#[test]
fn dm_designs_complete_identically() {
    for_cases(5, 32, |cfg, seed| {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return;
        }
        for dm in DmDesign::ALL {
            let hil = HilConfig {
                picos: PicosConfig::baseline(dm),
                ..HilConfig::balanced(8)
            };
            let r = run_hil(&trace, HilMode::HwOnly, &hil)
                .unwrap_or_else(|e| panic!("seed {seed} {dm}: {e}"));
            assert_eq!(r.order.len(), trace.len(), "seed {seed} {dm}");
        }
    });
}

/// FIFO and LIFO task-scheduler policies both produce legal schedules.
#[test]
fn ts_policies_legal() {
    for_cases(6, 32, |cfg, seed| {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return;
        }
        for policy in [TsPolicy::Fifo, TsPolicy::Lifo] {
            let hil = HilConfig {
                picos: PicosConfig::balanced().with_ts_policy(policy),
                ..HilConfig::balanced(6)
            };
            let r = run_hil(&trace, HilMode::HwOnly, &hil)
                .unwrap_or_else(|e| panic!("seed {seed} {policy:?}: {e}"));
            r.validate(&trace)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    });
}

/// Multi-instance routing preserves correctness on random traces.
#[test]
fn multi_instance_legal() {
    for_cases(7, 32, |cfg, seed| {
        // Reduce before generating so the reported seed replays exactly.
        let seed = seed % 500;
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return;
        }
        let mut wrng = SplitMix64::new(seed);
        let n = wrng.range_usize(1, 4);
        let hil = HilConfig {
            picos: PicosConfig::future(n, DmDesign::PearsonEightWay),
            ..HilConfig::balanced(8)
        };
        let r = run_hil(&trace, HilMode::HwOnly, &hil)
            .unwrap_or_else(|e| panic!("seed {seed} {n} instances: {e}"));
        r.validate(&trace)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    });
}

/// The graph builder and the software dependence tracker agree on the
/// predecessor structure when everything is submitted up front.
#[test]
fn graph_and_depmap_agree() {
    for_cases(8, 48, |cfg, seed| {
        let trace = gen::random_trace(cfg, seed);
        let graph = TaskGraph::build(&trace);
        let mut sw = picos_repro::runtime::SoftwareDeps::new(trace.len());
        for t in trace.iter() {
            sw.submit(t);
        }
        for t in trace.iter() {
            assert_eq!(
                sw.pending_preds(t.id) as usize,
                graph.preds(t.id).len(),
                "seed {seed} task {}",
                t.id
            );
        }
    });
}

/// Duration calibration preserves totals within rounding and keeps
/// every task at least one cycle long.
#[test]
fn calibration_accuracy() {
    for_cases(9, 48, |cfg, seed| {
        let mut trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return;
        }
        let mut wrng = SplitMix64::new(seed);
        let target = wrng.range_u64(1, 9_999_999);
        trace.calibrate_to(target);
        let total = trace.sequential_time();
        assert!(trace.iter().all(|t| t.duration >= 1), "seed {seed}");
        // Rounding error is at most half a cycle per task plus the minimum
        // clamp; allow one cycle per task of slack.
        let slack = trace.len() as u64;
        assert!(
            total.abs_diff(target) <= slack.max(1),
            "seed {seed}: total {total} vs target {target}"
        );
    });
}
