//! Property-based tests over random traces: the invariants every engine
//! must hold for *any* hardware-representable workload, not just the
//! paper's benchmarks.

use picos_repro::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = gen::RandomConfig> {
    (
        1usize..150,   // tasks
        1usize..24,    // addr_pool
        0usize..8,     // max_deps
        0.0f64..=1.0,  // write_fraction
        1u64..2_000,   // max_duration
    )
        .prop_map(|(tasks, addr_pool, max_deps, write_fraction, max_duration)| {
            gen::RandomConfig {
                tasks,
                addr_pool,
                max_deps,
                write_fraction,
                max_duration,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Picos platform never deadlocks on random traces and always
    /// produces a legal schedule, in every mode.
    #[test]
    fn picos_never_deadlocks(cfg in arb_config(), seed in 0u64..1_000, workers in 1usize..16) {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return Ok(());
        }
        for mode in HilMode::ALL {
            let r = run_hil(&trace, mode, &HilConfig::balanced(workers))
                .map_err(|e| TestCaseError::fail(format!("{mode}: {e}")))?;
            prop_assert_eq!(r.order.len(), trace.len());
            prop_assert!(r.validate(&trace).is_ok(), "illegal schedule in {}", mode);
        }
    }

    /// Same for the software runtime.
    #[test]
    fn software_runtime_never_sticks(cfg in arb_config(), seed in 0u64..1_000, workers in 1usize..24) {
        let trace = gen::random_trace(cfg, seed);
        let r = run_software(&trace, SwRuntimeConfig::with_workers(workers))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(r.validate(&trace).is_ok());
    }

    /// Perfect-scheduler bounds: critical path <= makespan <= total work;
    /// makespan * workers >= total work is NOT required (idle tails), but
    /// the work bound per worker is.
    #[test]
    fn perfect_bounds(cfg in arb_config(), seed in 0u64..1_000, workers in 1usize..32) {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return Ok(());
        }
        let graph = TaskGraph::build(&trace);
        let r = perfect_schedule(&trace, workers);
        prop_assert!(r.makespan >= graph.critical_path());
        prop_assert!(r.makespan >= trace.sequential_time().div_ceil(workers as u64));
        prop_assert!(r.makespan <= trace.sequential_time());
        prop_assert!(r.validate(&trace).is_ok());
    }

    /// Adding workers never slows the perfect scheduler down by more than
    /// the list-scheduling anomaly bound (factor 2).
    #[test]
    fn perfect_anomaly_bounded(cfg in arb_config(), seed in 0u64..1_000) {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return Ok(());
        }
        let m4 = perfect_schedule(&trace, 4).makespan;
        let m8 = perfect_schedule(&trace, 8).makespan;
        prop_assert!(m8 <= 2 * m4, "anomaly beyond Graham bound: {} vs {}", m8, m4);
    }

    /// The DM conflict ordering holds on any workload: Pearson 8-way never
    /// records more conflicts than direct 8-way... on clustered layouts.
    /// On arbitrary layouts both are valid designs, so we only assert that
    /// all designs complete with identical task counts.
    #[test]
    fn dm_designs_complete_identically(cfg in arb_config(), seed in 0u64..1_000) {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return Ok(());
        }
        let mut orders = Vec::new();
        for dm in DmDesign::ALL {
            let hil = HilConfig {
                picos: PicosConfig::baseline(dm),
                ..HilConfig::balanced(8)
            };
            let r = run_hil(&trace, HilMode::HwOnly, &hil)
                .map_err(|e| TestCaseError::fail(format!("{dm}: {e}")))?;
            prop_assert_eq!(r.order.len(), trace.len());
            orders.push(r.order);
        }
    }

    /// FIFO and LIFO task-scheduler policies both produce legal schedules.
    #[test]
    fn ts_policies_legal(cfg in arb_config(), seed in 0u64..1_000) {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return Ok(());
        }
        for policy in [TsPolicy::Fifo, TsPolicy::Lifo] {
            let hil = HilConfig {
                picos: PicosConfig::balanced().with_ts_policy(policy),
                ..HilConfig::balanced(6)
            };
            let r = run_hil(&trace, HilMode::HwOnly, &hil)
                .map_err(|e| TestCaseError::fail(format!("{policy:?}: {e}")))?;
            prop_assert!(r.validate(&trace).is_ok());
        }
    }

    /// Multi-instance routing preserves correctness on random traces.
    #[test]
    fn multi_instance_legal(cfg in arb_config(), seed in 0u64..500, n in 1usize..5) {
        let trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return Ok(());
        }
        let hil = HilConfig {
            picos: PicosConfig::future(n, DmDesign::PearsonEightWay),
            ..HilConfig::balanced(8)
        };
        let r = run_hil(&trace, HilMode::HwOnly, &hil)
            .map_err(|e| TestCaseError::fail(format!("{n} instances: {e}")))?;
        prop_assert!(r.validate(&trace).is_ok());
    }

    /// The graph builder and the software dependence tracker agree on the
    /// predecessor structure when everything is submitted up front.
    #[test]
    fn graph_and_depmap_agree(cfg in arb_config(), seed in 0u64..1_000) {
        let trace = gen::random_trace(cfg, seed);
        let graph = TaskGraph::build(&trace);
        let mut sw = picos_repro::runtime::SoftwareDeps::new(trace.len());
        for t in trace.iter() {
            sw.submit(t);
        }
        for t in trace.iter() {
            prop_assert_eq!(
                sw.pending_preds(t.id) as usize,
                graph.preds(t.id).len(),
                "task {}", t.id
            );
        }
    }

    /// Duration calibration preserves totals within rounding and keeps
    /// every task at least one cycle long.
    #[test]
    fn calibration_accuracy(cfg in arb_config(), seed in 0u64..1_000, target in 1u64..10_000_000) {
        let mut trace = gen::random_trace(cfg, seed);
        if trace.is_empty() {
            return Ok(());
        }
        trace.calibrate_to(target);
        let total = trace.sequential_time();
        prop_assert!(trace.iter().all(|t| t.duration >= 1));
        // Rounding error is at most half a cycle per task plus the minimum
        // clamp; allow one cycle per task of slack.
        let slack = trace.len() as u64;
        prop_assert!(
            total.abs_diff(target) <= slack.max(1),
            "total {} vs target {}", total, target
        );
    }
}
