//! Capacity-limit and failure-injection tests: the engine must stall
//! gracefully (and recover) at every hardware limit, and must report —
//! never mask — runs that cannot complete.

use picos_core::{EngineError, PicosConfig, PicosSystem};
use picos_repro::prelude::*;
use picos_repro::trace::KernelClass;

/// TM exhaustion: more submitted tasks than slots; the GW backpressures and
/// the run completes once finishes drain slots.
#[test]
fn tm_exhaustion_recovers() {
    let mut trace = Trace::new("tm-stress");
    for _ in 0..1000 {
        trace.push(KernelClass::GENERIC, [], 50_000);
    }
    let (r, stats) = run_hil_with_stats(&trace, HilMode::HwOnly, &HilConfig::balanced(4)).unwrap();
    assert_eq!(r.order.len(), 1000);
    assert!(stats.tm_stalls > 0, "must have hit the TM limit");
    assert!(stats.peak_in_flight <= 256);
}

/// VM exhaustion: a small VM forces dependence stalls but never deadlock.
#[test]
fn vm_exhaustion_recovers() {
    let mut cfg = PicosConfig::balanced();
    cfg.vm_entries = 8;
    let mut trace = Trace::new("vm-stress");
    for i in 0..200u64 {
        trace.push(
            KernelClass::GENERIC,
            [
                Dependence::input(0x1000 + (i % 40) * 8),
                Dependence::output(0x9000 + i * 8),
            ],
            5_000,
        );
    }
    let hil = HilConfig {
        picos: cfg,
        ..HilConfig::balanced(4)
    };
    let (r, stats) = run_hil_with_stats(&trace, HilMode::HwOnly, &hil).unwrap();
    assert_eq!(r.order.len(), 200);
    assert!(stats.vm_stalls > 0, "must have hit the VM limit");
    assert!(stats.peak_vm_live <= 8);
    r.validate(&trace).unwrap();
}

/// A tiny DM with heavy clustering: conflicts throttle but never wedge the
/// system as long as single tasks cannot pin a whole set by themselves.
#[test]
fn dm_exhaustion_recovers() {
    let mut cfg = PicosConfig::baseline(DmDesign::EightWay);
    cfg.dm_sets = 2;
    let mut trace = Trace::new("dm-stress");
    for i in 0..300u64 {
        // Two deps per task on word-strided addresses: at most 2 per set.
        trace.push(
            KernelClass::GENERIC,
            [
                Dependence::inout(0x1000 + (i % 64) * 8),
                Dependence::input(0x5000 + (i % 32) * 8),
            ],
            5_000,
        );
    }
    let hil = HilConfig {
        picos: cfg,
        ..HilConfig::balanced(6)
    };
    let (r, stats) = run_hil_with_stats(&trace, HilMode::HwOnly, &hil).unwrap();
    assert_eq!(r.order.len(), 300);
    assert!(stats.dm_conflicts > 0);
    r.validate(&trace).unwrap();
}

/// Withholding finish notifications must surface as a deadlock error from
/// the engine's own runner, not silent progress.
#[test]
fn withheld_finish_reports_deadlock() {
    let mut sys = PicosSystem::new(PicosConfig::balanced());
    sys.submit(picos_repro::trace::TaskId::new(0), vec![]);
    let r = sys.run_to_quiescence(100_000, |_| None);
    assert!(matches!(r, Err(EngineError::Deadlock { .. })));
    assert_eq!(sys.in_flight(), 1);
}

/// Tasks over the dependence limit are rejected at the API boundary.
#[test]
#[should_panic(expected = "max_deps_per_task")]
fn too_many_deps_rejected() {
    let mut sys = PicosSystem::new(PicosConfig::balanced());
    let deps: Vec<_> = (0..16).map(|i| Dependence::input(0x100 + i * 64)).collect();
    sys.submit(picos_repro::trace::TaskId::new(0), deps);
}

/// Invalid configurations cannot construct a system.
#[test]
#[should_panic(expected = "invalid Picos configuration")]
fn invalid_config_rejected() {
    let mut cfg = PicosConfig::balanced();
    cfg.num_dct = 0;
    let _ = PicosSystem::new(cfg);
}

/// Cluster per-shard TM exhaustion: far more independent tasks than any
/// shard's TM slots. Each shard's Gateway backpressures its own ingress,
/// the Distributor keeps feeding as finishes drain slots, and the run
/// completes with TM stalls on record.
#[test]
fn cluster_tm_exhaustion_stalls_and_recovers() {
    let mut trace = Trace::new("cluster-tm-stress");
    for _ in 0..1200 {
        trace.push(KernelClass::GENERIC, [], 50_000);
    }
    let cfg = ClusterConfig::balanced(4, 8);
    let (r, per_shard) = run_cluster_with_stats(&trace, &cfg).unwrap();
    assert_eq!(r.order.len(), 1200);
    let merged = merged_stats(&per_shard);
    assert!(merged.tm_stalls > 0, "must have hit a shard's TM limit");
    assert!(merged.peak_in_flight <= 256, "per-shard TM capacity holds");
    r.validate(&trace).unwrap();
}

/// Cluster per-shard VM exhaustion: shrunken Dependence Memories force
/// version stalls on every shard, but the sharded engine never wedges.
#[test]
fn cluster_vm_exhaustion_stalls_and_recovers() {
    let mut picos = PicosConfig::balanced();
    picos.vm_entries = 8;
    let mut trace = Trace::new("cluster-vm-stress");
    for i in 0..240u64 {
        trace.push(
            KernelClass::GENERIC,
            [
                Dependence::input(0x1000 + (i % 40) * 8),
                Dependence::output(0x9000 + i * 8),
            ],
            5_000,
        );
    }
    let cfg = ClusterConfig {
        picos,
        ..ClusterConfig::balanced(4, 8)
    };
    let (r, per_shard) = run_cluster_with_stats(&trace, &cfg).unwrap();
    assert_eq!(r.order.len(), 240);
    let merged = merged_stats(&per_shard);
    assert!(merged.vm_stalls > 0, "must have hit a shard's VM limit");
    assert!(merged.peak_vm_live <= 8, "per-shard VM capacity holds");
    r.validate(&trace).unwrap();
}

/// Termination property: a random fault plan over a random trace must
/// always terminate — either completing a valid schedule or surfacing a
/// typed retry-exhaustion error. Never a hang, never a panic. Plans are
/// drawn across the whole fault taxonomy: drop/dup/jitter rates, tight
/// retry budgets, shard pauses and fail-stop worker faults.
#[test]
fn random_fault_plans_always_terminate() {
    use picos_repro::trace::rng::SplitMix64;
    for seed in 0..12u64 {
        let mut rng = SplitMix64::new(0xFA017 ^ seed);
        let tr = gen::random_trace(gen::RandomConfig::default(), seed);
        let mut plan = FaultPlan::new(rng.next_u64())
            .with_drop_rate(rng.f64() * 0.4)
            .with_dup_rate(rng.f64() * 0.3)
            .with_jitter(rng.f64() * 0.5, rng.range_u64(1, 64))
            .with_link_timeout(rng.range_u64(32, 2048))
            .with_max_retries(rng.range_u64(1, 6) as u32);
        let shards = 4;
        if rng.bool(0.5) {
            let at = rng.range_u64(0, 40_000);
            plan = plan.with_pause(
                rng.range_u64(0, 3) as u16,
                at,
                at + rng.range_u64(1, 30_000),
            );
        }
        if rng.bool(0.5) {
            // One fault per shard at most: balanced(4, 8) gives every
            // shard two workers, so one fail-stop still leaves one.
            plan = plan.with_worker_fault(rng.range_u64(0, 3) as u16, rng.range_u64(0, 60_000));
        }
        let cfg = ClusterConfig::balanced(shards, 8).with_faults(plan.clone());
        match run_cluster(&tr, &cfg) {
            Ok(r) => {
                assert_eq!(r.order.len(), tr.len(), "seed {seed}: tasks missing");
                r.validate(&tr)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
            Err(ClusterError::LinkTimeout { attempts, .. }) => {
                assert!(attempts >= 1, "seed {seed}: exhausted without retrying");
            }
            Err(other) => panic!("seed {seed}: unexpected error {other:?} under {plan:?}"),
        }
    }
}

/// The full-system driver completes even when the worker count far exceeds
/// the available parallelism (idle workers are harmless).
#[test]
fn oversubscribed_workers() {
    let trace = gen::synthetic(gen::Case::Case4); // serial chain
    let r = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(64)).unwrap();
    assert_eq!(r.order.len(), trace.len());
    assert!(
        r.speedup() <= 1.01,
        "a chain cannot speed up: {}",
        r.speedup()
    );
}

/// Stats snapshots are internally consistent after a heavy run.
#[test]
fn stats_consistency() {
    let trace = gen::cholesky(gen::CholeskyConfig::paper(64));
    let (r, stats) =
        run_hil_with_stats(&trace, HilMode::FullSystem, &HilConfig::balanced(12)).unwrap();
    assert_eq!(stats.tasks_submitted, trace.len() as u64);
    assert_eq!(stats.tasks_completed, trace.len() as u64);
    let total_deps: u64 = trace.iter().map(|t| t.num_deps() as u64).sum();
    assert_eq!(stats.deps_processed, total_deps);
    assert!(stats.peak_in_flight <= 256);
    assert!(stats.peak_vm_live <= 512);
    assert_eq!(r.order.len(), trace.len());
}

/// An empty trace is a no-op everywhere.
#[test]
fn empty_trace_everywhere() {
    let trace = Trace::new("empty");
    for mode in HilMode::ALL {
        let r = run_hil(&trace, mode, &HilConfig::balanced(4)).unwrap();
        assert_eq!(r.makespan, 0);
    }
    assert_eq!(perfect_schedule(&trace, 4).makespan, 0);
    assert_eq!(
        run_software(&trace, SwRuntimeConfig::with_workers(4))
            .unwrap()
            .makespan,
        0
    );
}
