//! # picos-repro
//!
//! Reproduction of *"Performance Analysis of a Hardware Accelerator of
//! Dependence Management for Task-based Dataflow Programming models"*
//! (Tan, Bosch, Jiménez-González, Álvarez-Martínez, Ayguadé, Valero —
//! ISPASS 2016) as a family of Rust crates. This facade re-exports the
//! public API of every crate in the workspace:
//!
//! * [`trace`] — tasks, dependences, the dataflow graph and the paper's
//!   workload generators ([`picos_trace`]).
//! * [`core`] — the Picos hardware model: GW, TRS, DCT (DM/VM), ARB, TS
//!   ([`picos_core`]).
//! * [`runtime`] — the Nanos++-like software baseline and the perfect
//!   scheduler ([`picos_runtime`]).
//! * [`hil`] — the hardware-in-the-loop platform with its three modes
//!   ([`picos_hil`]).
//! * [`cluster`] — the sharded multi-Picos cluster with distributed
//!   dependence management ([`picos_cluster`]).
//! * [`backend`] — the uniform [`ExecBackend`](picos_backend::ExecBackend)
//!   trait over every engine plus the parallel experiment-sweep harness
//!   ([`picos_backend`]).
//! * [`serve`] — the multi-tenant simulation service: thousands of live
//!   journaled sessions behind one fair scheduler, over TCP or in-process
//!   ([`picos_serve`]).
//! * [`resources`] — the FPGA resource model ([`picos_resources`]).
//!
//! The crate layering and the recipe for adding a new execution backend
//! are documented in `ARCHITECTURE.md` at the repository root.
//!
//! # Quickstart
//!
//! ```
//! use picos_repro::prelude::*;
//!
//! // The paper's Cholesky workload at block size 64: fine-grained tasks,
//! // the regime the accelerator was built for.
//! let trace = gen::cholesky(gen::CholeskyConfig::paper(64));
//!
//! // Run it through the full Picos platform with 12 workers...
//! let picos = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(12))?;
//! // ... and through the software-only runtime.
//! let nanos = run_software(&trace, SwRuntimeConfig::with_workers(12))?;
//!
//! // The headline result: for fine-grained tasks, hardware dependence
//! // management keeps scaling where the software runtime collapses.
//! assert!(picos.speedup() > 1.5 * nanos.speedup());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use picos_backend as backend;
pub use picos_cluster as cluster;
pub use picos_core as core;
pub use picos_hil as hil;
pub use picos_metrics as metrics;
pub use picos_resources as resources;
pub use picos_runtime as runtime;
pub use picos_serve as serve;
pub use picos_trace as trace;

/// Everything a typical experiment needs, importable in one line.
pub mod prelude {
    pub use picos_backend::{
        feed_trace, run_paced, run_paced_with_telemetry, Admission, ArrivalTrace, BackendBuilder,
        BackendError, BackendSpec, ClusterBackend, ExecBackend, PaceReport, PacedTask, PacedTrace,
        SessionConfig, SessionCore, SessionOutput, SimEvent, SimSession, Snapshot, Sweep,
        SweepResult, SweepRow, Workload,
    };
    // `SyntheticMetrics` / `synthetic_metrics` come in through `picos_hil`
    // above (the HIL-flavoured wrapper re-exports the metrics-crate type).
    pub use picos_cluster::{
        home_shard, merged_stats, run_cluster, run_cluster_with_stats, ClusterConfig, ClusterError,
        FaultCounters, FaultPlan, ShardPause, ShardPolicy, WorkerFault,
    };
    pub use picos_core::{
        DmDesign, EngineError, FinishedReq, PicosConfig, PicosSystem, Timing, TsPolicy,
    };
    pub use picos_hil::{
        run_hil, run_hil_with_stats, synthetic_metrics, HilConfig, HilCostModel, HilError, HilMode,
        Link, LinkModel, SyntheticMetrics, Workers,
    };
    pub use picos_metrics::span;
    pub use picos_metrics::{
        MergeRule, Metric, MetricSet, MetricValue, SeriesKind, SeriesSpec, Timeline, WindowSampler,
    };
    pub use picos_resources::{full_picos_resources, table3, ResourceEstimate, XC7Z020};
    pub use picos_runtime::{
        perfect_schedule, replay_journal, replay_journal_tail, run_software, ExecReport,
        JournaledSession, NanosCostModel, SwRuntimeConfig,
    };
    pub use picos_serve::{
        ServeConfig, ServeError, ServeHandle, Service, SubmitOutcome, TenantSpec, TenantStats,
    };
    pub use picos_trace::gen;
    pub use picos_trace::{
        Dependence, Direction, JournalOp, SessionJournal, TaskDescriptor, TaskGraph, TaskId, Trace,
        TraceStats,
    };
}
