//! Multi-tenant service quickstart: one hundred live in-process tenants
//! multiplexed behind the fair scheduler of [`picos_repro::serve`].
//!
//! ```text
//! cargo run --release --example serve_tenants
//! ```
//!
//! Each tenant is a full streaming session on its own backend — the
//! fleet here cycles through every backend family — fed round-robin by
//! one driver thread. The service admits up to the per-tenant quota,
//! pushes back above it, and drains saturated tenants with fair
//! scheduler rounds; the conformance suite pins that none of this
//! multiplexing is visible in any tenant's final schedule.

use picos_repro::prelude::*;
use picos_repro::serve::schedule_digest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A modest quota so the round-robin feed actually exercises
    // admission control instead of buffering whole traces.
    let mut svc = Service::new(ServeConfig {
        default_quota: 8,
        ..ServeConfig::default()
    })?;

    // One hundred tenants cycling through the backend families, with
    // varying worker counts and stream lengths.
    let fleet: Vec<(String, TenantSpec, Trace)> = (0..100)
        .map(|i| {
            let spec = TenantSpec::new(BackendSpec::ALL[i % BackendSpec::ALL.len()], 2 + i % 4);
            let trace = gen::stream(gen::StreamConfig::heavy(16 + i % 9));
            (format!("tenant{i:03}"), spec, trace)
        })
        .collect();
    for (name, spec, trace) in &fleet {
        svc.open(name, spec)?;
        // Optional allocation hint — the same pre-sizing a solo
        // `feed_trace` driver gets.
        svc.reserve(name, trace.len())?;
    }
    println!(
        "opened {} tenants across {} backend families\n",
        svc.len(),
        BackendSpec::ALL.len()
    );

    // Round-robin feed: one task per tenant per lap, riding out quota
    // rejections with fair scheduler rounds (each round gives every
    // steppable tenant a bounded step budget).
    let mut cursors = vec![0usize; fleet.len()];
    let mut rejections = 0u64;
    loop {
        let mut fed = false;
        for (i, (name, _, trace)) in fleet.iter().enumerate() {
            if cursors[i] >= trace.len() {
                continue;
            }
            let task = trace.tasks()[cursors[i]].clone();
            while svc.submit(name, &task)? != SubmitOutcome::Accepted {
                rejections += 1;
                svc.run_round();
            }
            cursors[i] += 1;
            fed = true;
        }
        if !fed {
            break;
        }
    }
    svc.run_until_idle();

    // The metrics scrape: service-level gauges plus one drained timeline
    // per tenant.
    let scrape = svc.scrape();
    println!("service counters after the feed:");
    for name in [
        "serve.tenants_live",
        "serve.admission_rejections",
        "serve.steps_scheduled",
    ] {
        if let Some(v) = scrape.service.value(name) {
            println!("  {name:32} {v}");
        }
    }
    println!("  driver-side retry loops            {rejections}");
    println!(
        "  per-tenant timelines scraped       {}\n",
        scrape.tenants.len()
    );

    // Close everything; each close finishes the session and returns the
    // final report. The digest is the bit-exactness fingerprint the
    // conformance tests compare against solo runs.
    let mut tasks_total = 0usize;
    let mut sample = Vec::new();
    for (name, _, trace) in &fleet {
        let out = svc.close(name)?;
        assert_eq!(out.report.order.len(), trace.len());
        tasks_total += out.report.order.len();
        if sample.len() < 4 {
            sample.push(format!(
                "  {name}: {} tasks, makespan {} cycles, digest {:#018x}",
                out.report.order.len(),
                out.report.makespan,
                schedule_digest(&out.report)
            ));
        }
    }
    println!("closed 100 tenants, {tasks_total} tasks total; first few:");
    for line in sample {
        println!("{line}");
    }
    Ok(())
}
