//! What-if fork: configuration search on a *live* session.
//!
//! ```text
//! cargo run --release --example whatif_fork
//! ```
//!
//! A production session has been running for a while — its arrival
//! prefix is recorded in its journal — and the question is whether a
//! different Dependence Memory design would serve the rest of the
//! workload better. Re-running a sweep from scratch answers that by
//! re-simulating the whole history per candidate; the snapshot/fork
//! subsystem answers it without disturbing the live session:
//!
//! 1. **Fork** the live session in memory (`SimSession::fork_boxed`):
//!    the baseline replica runs the remaining workload to completion
//!    while the original keeps accepting traffic.
//! 2. **Replay** the recorded arrival prefix into one fresh replica per
//!    candidate config (`replay_journal` over the live journal) — the
//!    same primitive serve-crash recovery uses, so every replica starts
//!    from the exact recorded history.
//! 3. Rank the projected makespans and report the winner.
//!
//! The same flow is available from the command line as `picos whatif`.
//! A snapshot JSON roundtrip (`Snapshot::capture` → `to_json` →
//! `restore`) is also shown: it is the persistent sibling of the
//! in-memory fork, and what a `picos-serve` tenant checkpoint writes.

use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The live session: full Picos platform, default DM design, with an
    // open-loop stream workload half-ingested.
    let trace = gen::stream(gen::StreamConfig::heavy(400));
    let workers = 8;
    let base_dm = DmDesign::PearsonEightWay;
    let backend_for = |dm: DmDesign| {
        BackendSpec::Picos(HilMode::FullSystem)
            .builder(workers)
            .picos(&PicosConfig::future(1, dm))
            .build()
    };
    let backend = backend_for(base_dm);
    let mut live = JournaledSession::new(backend.open_with(SessionConfig::batch())?);
    let cut = trace.len() / 2;
    for task in trace.iter().take(cut) {
        assert_eq!(live.submit(task), Admission::Accepted);
    }
    println!(
        "live session: {} of {} tasks ingested under dm={base_dm}",
        cut,
        trace.len()
    );

    // Snapshot roundtrip: full engine state through the JSON codec and
    // back into a fresh session — bit-exact, as the conformance suite
    // pins for every backend family.
    let snap = Snapshot::capture(&**live.inner());
    let json = snap.to_json();
    let mut restored = backend.open_with(SessionConfig::batch())?;
    Snapshot::from_json(&json)?.restore(&mut *restored)?;
    println!(
        "snapshot: {} bytes of JSON, restores to cycle {}",
        json.len(),
        restored.now()
    );

    // Every replica finishes the remaining suffix; the live session is
    // never consumed.
    let finish = |mut s: Box<dyn SimSession>| -> Result<u64, BackendError> {
        for task in trace.iter().skip(cut) {
            assert_eq!(s.submit(task), Admission::Accepted);
        }
        Ok(s.finish_full()?.report.makespan)
    };

    // Baseline: the in-memory fork of the live session.
    let mut rows = vec![(base_dm, finish(live.inner().fork_boxed())?)];

    // Candidates: fresh sessions per DM design, primed by replaying the
    // live session's recorded arrival prefix.
    for dm in DmDesign::ALL.into_iter().filter(|d| *d != base_dm) {
        let mut replica = backend_for(dm).open_with(SessionConfig::batch())?;
        replay_journal(&mut *replica, live.journal())?;
        rows.push((dm, finish(replica)?));
    }

    println!("\n{:<12}  {:>12}", "dm design", "makespan");
    for (dm, makespan) in &rows {
        println!("{:<12}  {makespan:>12}", dm.to_string());
    }
    let (best, best_makespan) = rows.iter().min_by_key(|(_, m)| *m).expect("rows");
    println!("\nbest for the remaining workload: dm={best} ({best_makespan} cycles)");

    // The live session is still running and still journaled: feed it the
    // rest and confirm it agrees with its own fork's projection.
    for task in trace.iter().skip(cut) {
        assert_eq!(live.submit(task), Admission::Accepted);
    }
    let (session, _journal) = live.into_parts();
    let live_makespan = session.finish_full()?.report.makespan;
    assert_eq!(
        live_makespan, rows[0].1,
        "the fork's projection must match the live session exactly"
    );
    println!("live session finished: {live_makespan} cycles (matches its fork)");
    Ok(())
}
