//! Dependence Memory design exploration (the paper's Section V-A).
//!
//! ```text
//! cargo run --release --example dm_design_explorer
//! ```
//!
//! Runs Heat — whose contiguous block addresses cluster catastrophically
//! under direct indexing — and SparseLu — whose heap-allocated blocks
//! spread — through the three DM designs, reporting speedup, DM conflicts
//! and estimated FPGA cost. This is the design-space question the paper
//! answers in favour of the Pearson-hashed 8-way DM.

use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 12;
    let workloads = [
        gen::heat(gen::HeatConfig::paper(64)),
        gen::sparselu(gen::SparseLuConfig::paper(64)),
    ];
    for trace in &workloads {
        println!(
            "workload: {} ({} tasks)\n  design      speedup  conflicts  vm-stalls  BRAM36  LUTs",
            trace.name,
            trace.len()
        );
        for dm in DmDesign::ALL {
            let cfg = HilConfig {
                picos: PicosConfig::baseline(dm),
                ..HilConfig::balanced(workers)
            };
            let (report, stats) = run_hil_with_stats(trace, HilMode::HwOnly, &cfg)?;
            report.validate(trace)?;
            let cost = full_picos_resources(&PicosConfig::baseline(dm));
            println!(
                "  {:<10}  {:>7.2}  {:>9}  {:>9}  {:>6}  {:>4}",
                dm.name(),
                report.speedup(),
                stats.dm_conflicts,
                stats.vm_stalls,
                cost.bram36,
                cost.luts
            );
        }
        println!();
    }
    println!("The Pearson-hashed 8-way DM wins on clustered addresses at a");
    println!("fraction of the 16-way design's block-RAM cost (paper Table III).");
    Ok(())
}
