//! Granularity sweep: the motivation experiment of the paper's Figure 1,
//! extended with the Picos side of the story.
//!
//! ```text
//! cargo run --release --example granularity_sweep [app]
//! ```
//!
//! For a constant problem size and shrinking block sizes, prints the
//! speedup of the software-only runtime next to Picos Full-system: the
//! software collapses once per-task overhead rivals task duration, the
//! accelerator keeps scaling.

use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cholesky".into());
    let app = gen::App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| format!("unknown app {name}; try one of: heat lu sparselu cholesky h264dec"))?;
    let workers = 12;

    println!("app: {app}, 12 workers");
    println!("block  #tasks  avg-dur(cycles)  nanos  picos  perfect");
    println!("-----  ------  ---------------  -----  -----  -------");
    for bs in app.paper_block_sizes() {
        let trace = app.generate(bs);
        let nanos = run_software(&trace, SwRuntimeConfig::with_workers(workers))?.speedup();
        let picos =
            run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(workers))?.speedup();
        let perfect = perfect_schedule(&trace, workers).speedup();
        let stats = trace.stats();
        println!(
            "{:>5}  {:>6}  {:>15.0}  {:>5.2}  {:>5.2}  {:>7.2}",
            bs, stats.num_tasks, stats.avg_task_size, nanos, picos, perfect
        );
    }
    Ok(())
}
