//! Granularity sweep: the motivation experiment of the paper's Figure 1,
//! extended with the Picos side of the story and run through the parallel
//! sweep harness.
//!
//! ```text
//! cargo run --release --example granularity_sweep [app]
//! ```
//!
//! For a constant problem size and shrinking block sizes, prints the
//! speedup of the software-only runtime next to Picos Full-system: the
//! software collapses once per-task overhead rivals task duration, the
//! accelerator keeps scaling.

use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cholesky".into());
    let app = gen::App::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| {
            format!("unknown app {name}; try one of: heat lu sparselu cholesky h264dec")
        })?;
    let workers = 12;

    // One declarative grid instead of a hand-rolled loop: all block sizes
    // × three backends, cells executed in parallel.
    let backends = [
        BackendSpec::Nanos,
        BackendSpec::Picos(HilMode::FullSystem),
        BackendSpec::Perfect,
    ];
    let result = Sweep::over_apps([app], app.paper_block_sizes())
        .workers([workers])
        .backends(backends)
        .run();
    if let Some(e) = result.first_error() {
        return Err(e.into());
    }

    println!("app: {app}, {workers} workers");
    println!("block  #tasks  avg-dur(cycles)  nanos  picos  perfect");
    println!("-----  ------  ---------------  -----  -----  -------");
    for bs in app.paper_block_sizes() {
        let stats = app.generate(bs).stats();
        let s = |spec| {
            result
                .speedup_of(app.name(), bs, spec, workers)
                .expect("cell ran")
        };
        println!(
            "{:>5}  {:>6}  {:>15.0}  {:>5.2}  {:>5.2}  {:>7.2}",
            bs,
            stats.num_tasks,
            stats.avg_task_size,
            s(BackendSpec::Nanos),
            s(BackendSpec::Picos(HilMode::FullSystem)),
            s(BackendSpec::Perfect),
        );
    }
    Ok(())
}
