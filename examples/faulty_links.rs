//! Fault injection on the cluster interconnect.
//!
//! ```text
//! cargo run --release --example faulty_links
//! ```
//!
//! Runs a heavy stream workload on a 4-shard cluster while a seeded
//! [`FaultPlan`] drops (and occasionally duplicates) interconnect
//! messages. The ack/retry protocol recovers every loss, so the schedule
//! stays legal at any drop rate — it just gets slower as retry timeouts
//! stretch the critical path. The sweep prints that cost next to the
//! recovery counters.
//!
//! Two properties worth seeing in the output:
//!
//! * the **0% row is bit-identical** to a run with no plan attached
//!   (asserted below — the zero-fault identity the conformance suite
//!   pins), and
//! * every faulted run is **deterministic**: same seed, same trace, same
//!   makespan and counters, every time.
//!
//! The last section starves the retry budget on a badly lossy link, so
//! the run terminates with the typed [`ClusterError::LinkTimeout`]
//! instead of hanging — the fail-stop edge of the fault model.

use picos_repro::cluster::ClusterSession;
use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 16;
    let trace = gen::stream(gen::StreamConfig {
        interarrival: 15,
        mean_duration: 200,
        ..gen::StreamConfig::heavy(2_000)
    });
    println!(
        "workload: {} ({} tasks) on a 4-shard cluster\n",
        trace.name,
        trace.len()
    );

    // Baseline: no plan attached at all.
    let plain = run_cluster(&trace, &ClusterConfig::balanced(4, workers))?;

    println!("drop%   makespan  slowdown  drops  retries  redeliveries");
    for drop_pct in [0u32, 1, 2, 5, 10, 20] {
        let plan = FaultPlan::new(0xBAD_11A1).with_drop_rate(drop_pct as f64 / 100.0);
        let cfg = ClusterConfig::balanced(4, workers).with_faults(plan);
        let mut session = ClusterSession::new(cfg, SessionConfig::batch())?;
        feed_trace(&mut session, &trace).expect("batch sessions never backpressure");
        let (report, _, _, counters, _) = session.into_output()?;
        report.validate(&trace)?;
        let c = counters.unwrap_or_default();
        println!(
            "{drop_pct:>4}%  {:>9}  {:>7.3}x  {:>5}  {:>7}  {:>12}",
            report.makespan,
            report.makespan as f64 / plain.makespan as f64,
            c.drops,
            c.retries,
            c.redeliveries,
        );
        if drop_pct == 0 {
            // Zero-fault identity: an inert plan is invisible.
            assert_eq!(report.makespan, plain.makespan);
        }
    }

    // A plan the protocol cannot absorb: 60% loss with a single retry.
    // The run must still terminate — with a typed error naming the link.
    let hopeless = FaultPlan::new(7)
        .with_drop_rate(0.6)
        .with_link_timeout(64)
        .with_max_retries(1);
    let cfg = ClusterConfig::balanced(4, workers).with_faults(hopeless);
    match run_cluster(&trace, &cfg) {
        Err(ClusterError::LinkTimeout {
            from,
            to,
            at,
            attempts,
        }) => println!(
            "\n60% loss, 1 retry: link {from}->{to} gave up at cycle {at} \
             after {attempts} attempts (typed error, no hang)"
        ),
        Ok(r) => println!(
            "\n60% loss, 1 retry: survived anyway (makespan {})",
            r.makespan
        ),
        Err(other) => return Err(other.into()),
    }
    Ok(())
}
