//! Open-loop streaming quickstart: drive a cluster session with paced
//! arrivals at two offered rates and compare achieved throughput and
//! backpressure.
//!
//! ```text
//! cargo run --release --example paced_stream
//! ```
//!
//! The workload is a 10 000-request open-loop stream
//! (`gen::stream_requests`: independent tenants, no pacer-chain encoding —
//! arrival times feed the session directly). At a gentle rate the cluster
//! keeps up and admission never pushes back; near the per-shard dependence
//! managers' saturation point the in-flight window throttles the client,
//! which is exactly the full-TRS stall a real runtime would see.

use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (trace, arrivals) = picos_repro::trace::gen::stream_requests(gen::StreamConfig {
        tasks: 10_000,
        ..gen::StreamConfig::default()
    });
    println!(
        "workload: {} requests, {:.0} cycles sequential work\n",
        trace.len(),
        trace.sequential_time() as f64
    );

    let backend = BackendSpec::Cluster(4).build(16, &PicosConfig::balanced());
    println!(
        "backend: {} (4 shards, 16 workers), window 256\n",
        backend.name()
    );

    // Two offered rates: one task per 200 cycles (gentle) and one per 8
    // cycles — past both the dependence managers' throughput (~70
    // cycles/task per Picos, Table IV) and the worker pool's drain rate,
    // so the window must push back.
    for interarrival in [200u64, 8] {
        let r = run_paced(&*backend, PacedTrace::new(&trace, interarrival), Some(256))?;
        println!("offered 1 task / {interarrival} cycles:");
        println!(
            "  offered rate:    {:>7.3} tasks/kcycle",
            r.offered_per_kcycle()
        );
        println!(
            "  achieved rate:   {:>7.3} tasks/kcycle (makespan {} cycles)",
            r.achieved_per_kcycle(),
            r.report.makespan
        );
        println!(
            "  backpressure:    {:>6.1}% of submissions pushed back ({} retries)",
            r.backpressure_ratio() * 100.0,
            r.retries
        );
        println!();
    }

    // The same stream under its own recorded arrival gaps (the generator's
    // jittered inter-arrival draw) instead of a uniform rate.
    let r = run_paced(&*backend, ArrivalTrace::new(&trace, &arrivals), Some(256))?;
    println!(
        "recorded arrivals (mean gap {} cycles): achieved {:.3} tasks/kcycle, \
         backpressure {:.1}%",
        arrivals.last().unwrap() / trace.len() as u64,
        r.achieved_per_kcycle(),
        r.backpressure_ratio() * 100.0
    );
    Ok(())
}
