//! Cholesky task-graph illustration (the paper's Figure 2).
//!
//! ```text
//! cargo run --release --example cholesky_graph
//! ```
//!
//! Builds the dependence graph of a small blocked Cholesky factorization,
//! prints the kernel of every task with its predecessors, and shows a
//! 6-worker zero-overhead schedule — tasks sharing a time slot run in
//! parallel, like the colour groups of the paper's figure.

use picos_repro::prelude::*;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4x4-block Cholesky: 4 potrf + 6 trsm + 6 syrk + 4 gemm = 20 tasks.
    let trace = gen::cholesky(gen::CholeskyConfig {
        problem_size: 1024,
        block_size: 256,
        calibrate: false,
    });
    let graph = TaskGraph::build(&trace);

    println!(
        "task graph ({} tasks, {} edges):",
        trace.len(),
        graph.num_edges()
    );
    for t in trace.iter() {
        let preds: Vec<String> = graph.preds(t.id).iter().map(|&p| format!("T{p}")).collect();
        println!(
            "  {:<4} {:<6} <- [{}]",
            t.id.to_string(),
            trace.kernel_name(t.kernel),
            preds.join(", ")
        );
    }

    // The paper's "one possible parallel execution ... for a 6 cores
    // machine (tasks with the same color are run in parallel)".
    let schedule = perfect_schedule(&trace, 6);
    schedule.validate(&trace)?;
    let mut waves: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for (task, &start) in schedule.start.iter().enumerate() {
        waves.entry(start).or_default().push(task as u32);
    }
    println!("\n6-worker schedule (tasks starting together run in parallel):");
    for (i, (start, tasks)) in waves.iter().enumerate() {
        let labels: Vec<String> = tasks
            .iter()
            .map(|&t| {
                format!(
                    "T{t}:{}",
                    trace.kernel_name(trace.tasks()[t as usize].kernel)
                )
            })
            .collect();
        println!("  wave {:<2} (t={start:>8}): {}", i, labels.join("  "));
    }
    println!(
        "\nmakespan {} cycles, speedup {:.2} on 6 workers",
        schedule.makespan,
        schedule.speedup()
    );
    Ok(())
}
