//! Cluster quickstart: scale dependence management past one Picos.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```
//!
//! Generates an open-loop stream workload (requests arriving faster than
//! one Picos pipeline's task throughput — sustained heavy traffic) and
//! runs it on 1, 2, 4 and 8 shards, printing makespan, speedup and the
//! per-shard dependence-processing split. A one-shard cluster is
//! cycle-identical to the HW-only HIL platform, so the 1-shard row *is*
//! the paper-calibrated baseline.

use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 16;
    // ~133 requests per 2k cycles: roughly twice what one Picos pipeline
    // sustains, so a single dependence manager saturates.
    let trace = gen::stream(gen::StreamConfig {
        interarrival: 15,
        mean_duration: 200,
        ..gen::StreamConfig::heavy(2_000)
    });
    println!(
        "workload: {} ({} tasks, {} cycles sequential)\n",
        trace.name,
        trace.len(),
        trace.sequential_time()
    );

    println!("shards  makespan  speedup  deps/shard (split)");
    let mut baseline = 0u64;
    for shards in [1usize, 2, 4, 8] {
        let cfg = ClusterConfig::balanced(shards, workers);
        let (report, per_shard) = run_cluster_with_stats(&trace, &cfg)?;
        report.validate(&trace)?;
        if shards == 1 {
            baseline = report.makespan;
        }
        let split: Vec<String> = per_shard
            .iter()
            .map(|s| s.deps_processed.to_string())
            .collect();
        println!(
            "{shards:>6}  {:>8}  {:>6.2}x  [{}]  ({:.2}x vs 1 shard)",
            report.makespan,
            report.speedup(),
            split.join(", "),
            baseline as f64 / report.makespan as f64
        );
    }

    // Placement policy matters: compare interconnect pressure at 4 shards.
    println!("\npolicy           cross-shard regs  makespan");
    for policy in ShardPolicy::ALL {
        let cfg = ClusterConfig {
            policy,
            ..ClusterConfig::balanced(4, workers)
        };
        let (report, per_shard) = run_cluster_with_stats(&trace, &cfg)?;
        let total = merged_stats(&per_shard);
        // Fragments submitted beyond one per task crossed the interconnect.
        let cross = total.tasks_submitted - trace.len() as u64;
        println!("{policy:<15}  {cross:>16}  {:>8}", report.makespan);
    }
    Ok(())
}
