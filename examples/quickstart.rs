//! Quickstart: run one workload through every execution backend.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the paper's Cholesky factorization at a fine task granularity
//! and executes it on every engine behind the uniform [`ExecBackend`]
//! trait — the Picos hardware model (three HIL modes), the Nanos++-like
//! software runtime and the zero-overhead perfect scheduler — then prints
//! the speedup of each: the core comparison of the paper's Figure 11.

use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 12;
    let trace = gen::cholesky(gen::CholeskyConfig::paper(64));
    println!(
        "workload: {} ({} tasks, {} cycles sequential)",
        trace.name,
        trace.len(),
        trace.sequential_time()
    );

    let graph = TaskGraph::build(&trace);
    let profile = graph.parallelism();
    println!(
        "graph: {} edges, critical path {} cycles, avg parallelism {:.1}\n",
        graph.num_edges(),
        profile.critical_path,
        profile.avg_parallelism
    );

    println!("engine          speedup ({workers} workers)");
    println!("--------------  -------");
    let mut picos_full = 0.0;
    let mut roofline = 0.0;
    for spec in BackendSpec::ALL {
        let backend = spec.build(workers, &PicosConfig::balanced());
        let report = backend.run(&trace)?;
        // Every schedule must respect the dataflow graph.
        report.validate(&trace)?;
        println!("{:<14}  {:>7.2}", report.engine, report.speedup());
        match spec {
            BackendSpec::Perfect => roofline = report.speedup(),
            BackendSpec::Picos(HilMode::FullSystem) => picos_full = report.speedup(),
            _ => {}
        }
    }
    println!(
        "\nPicos Full-system keeps {:.0}% of the perfect-scheduler roofline.",
        100.0 * picos_full / roofline
    );
    Ok(())
}
