//! Quickstart: run one workload through all three execution engines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the paper's Cholesky factorization at a fine task granularity,
//! executes it on (1) the Picos hardware model in Full-system mode, (2) the
//! Nanos++-like software runtime, and (3) the zero-overhead perfect
//! scheduler, then prints the speedup of each — the core comparison of the
//! paper's Figure 11.

use picos_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 12;
    let trace = gen::cholesky(gen::CholeskyConfig::paper(64));
    println!(
        "workload: {} ({} tasks, {} cycles sequential)",
        trace.name,
        trace.len(),
        trace.sequential_time()
    );

    let graph = TaskGraph::build(&trace);
    let profile = graph.parallelism();
    println!(
        "graph: {} edges, critical path {} cycles, avg parallelism {:.1}\n",
        graph.num_edges(),
        profile.critical_path,
        profile.avg_parallelism
    );

    let picos = run_hil(&trace, HilMode::FullSystem, &HilConfig::balanced(workers))?;
    let nanos = run_software(&trace, SwRuntimeConfig::with_workers(workers))?;
    let perfect = perfect_schedule(&trace, workers);

    // Every schedule must respect the dataflow graph.
    picos.validate(&trace)?;
    nanos.validate(&trace)?;
    perfect.validate(&trace)?;

    println!("engine          speedup ({workers} workers)");
    println!("--------------  -------");
    for r in [&picos, &nanos, &perfect] {
        println!("{:<14}  {:>7.2}", r.engine, r.speedup());
    }
    println!(
        "\nPicos keeps {:.0}% of the roofline; the software runtime keeps {:.0}%.",
        100.0 * picos.speedup() / perfect.speedup(),
        100.0 * nanos.speedup() / perfect.speedup()
    );
    Ok(())
}
